"""Decentralized light-grid organisation (section 5.2, "Decentralized").

"In this vision, all jobs -- grid and local ones -- are submitted to local
scheduling systems.  These systems then have the possibility to exchange work
in order to balance the load.  The protocol for exchanging work still has to
be defined, but it would have to take care of both fairness and performance
issues at the same time."

Since the paper explicitly leaves the protocol open, this module implements
a simple, well-documented *load-threshold* exchange protocol (see
:class:`repro.runtime.hooks.LoadExchangeHook` for the rules: relative-load
comparison on every submission/completion, smallest-first migration of
queued jobs, wide-area transfer delays, owners preserved for the fairness
metrics).

Since the unified-runtime refactor the simulator is a *configuration* of
:class:`repro.runtime.lifecycle.SchedulingRuntime`: one node per cluster
with running-work and flow-time accounting, plus the exchange hook.  Like
the centralized simulator, ``local_policy`` accepts a single policy or a
per-cluster mapping, so each cluster of the grid can run its own scheduler.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

from repro.core.allocation import Schedule
from repro.core.criteria import CriteriaReport
from repro.core.job import Job
from repro.core.policies.base import MoldableAllocator
from repro.metrics.fairness import fairness_report
from repro.platform.grid import LightGrid
from repro.runtime.hooks import LoadExchangeHook
from repro.runtime.lifecycle import ClusterNode, RuntimeConfig, SchedulingRuntime
from repro.core.policies.registry import PolicySpec, resolve_cluster_policies
from repro.runtime.record import MODE_DECENTRALIZED, SimulationRecord

#: Unified result model; the historical name is kept as an alias.
DecentralizedResult = SimulationRecord

_DECENTRALIZED_CONFIG = RuntimeConfig(
    track_work=True,
    release_work_on_complete=True,
    track_flows=True,
    starved_message="cluster {name!r} finished with {count} jobs queued",
)


class DecentralizedGridSimulator:
    """Load-threshold work exchange between the clusters of a light grid."""

    def __init__(
        self,
        grid: LightGrid,
        *,
        local_policy: Union[PolicySpec, Mapping[str, PolicySpec]] = "backfill",
        allocator: Optional[MoldableAllocator] = None,
        imbalance_threshold: float = 2.0,
        exchange_enabled: bool = True,
        data_volume_per_work_unit: float = 0.1,
        trace_labels: bool = False,
    ) -> None:
        if imbalance_threshold < 0:
            raise ValueError("imbalance_threshold must be >= 0")
        self.grid = grid
        self._policies = resolve_cluster_policies(
            grid, local_policy, allocator, default="backfill"
        )
        self.imbalance_threshold = imbalance_threshold
        self.exchange_enabled = exchange_enabled
        self.data_volume_per_work_unit = data_volume_per_work_unit
        #: Build per-event label strings (debugging aid; off on the fast path).
        self.trace_labels = trace_labels

    # -- main entry point --------------------------------------------------------
    def run(self, submissions: Mapping[str, Sequence[Job]]) -> SimulationRecord:
        """Run the simulation; ``submissions`` maps cluster name -> local jobs."""

        unknown = [name for name in submissions if name not in self.grid.cluster_names]
        if unknown:
            raise ValueError(f"submissions reference unknown clusters: {unknown}")

        nodes = [
            ClusterNode(
                cluster.name,
                cluster.processor_count,
                policy=self._policies[cluster.name],
                speed=cluster.machines[0].speed,
                cluster=cluster,
            )
            for cluster in self.grid
        ]
        exchange = LoadExchangeHook(
            self.grid,
            imbalance_threshold=self.imbalance_threshold,
            enabled=self.exchange_enabled,
            data_volume_per_work_unit=self.data_volume_per_work_unit,
        )
        runtime = SchedulingRuntime(
            nodes,
            hooks=[exchange],
            config=_DECENTRALIZED_CONFIG,
            trace_labels=self.trace_labels,
        )
        horizon = runtime.run(submissions)

        criteria: Dict[str, CriteriaReport] = {}
        for node in nodes:
            # Migrated jobs may start before their *local* release date on the
            # remote schedule clock; validation of release dates is therefore
            # done against the recorded submission times, not job.release_date.
            node.schedule.validate(check_release_dates=False)
            criteria[node.name] = CriteriaReport.from_schedule(node.schedule)

        # Fairness is computed on the union of the per-cluster schedules on a
        # virtual platform of the full grid size.
        union = Schedule(self.grid.processor_count)
        offset = 0
        for node in nodes:
            for entry in node.schedule:
                union.add(
                    entry.job,
                    entry.start,
                    [p + offset for p in entry.processors],
                    entry.allocation.runtime,
                )
            offset += node.machine_count
        fairness = fairness_report(
            union,
            entitled_shares={
                c.community or c.name: c.processor_count / self.grid.processor_count
                for c in self.grid
            },
        )

        flow_values = list(runtime.flows.values())
        mean_flow = sum(flow_values) / len(flow_values) if flow_values else 0.0
        max_flow = max(flow_values) if flow_values else 0.0
        return SimulationRecord(
            mode=MODE_DECENTRALIZED,
            machine_count=self.grid.processor_count,
            schedules={node.name: node.schedule for node in nodes},
            cluster_criteria=criteria,
            trace=runtime.trace,
            horizon=horizon,
            policies={node.name: node.policy.name for node in nodes},
            migrations=exchange.migrations,
            migrated_jobs=exchange.migrated_jobs,
            fairness=fairness,
            flows=dict(runtime.flows),
            mean_flow=mean_flow,
            max_flow=max_flow,
        )
