#!/usr/bin/env python3
"""Which policy for which application?

The title question of the paper: different applications (workload shapes) and
different objectives call for different scheduling policies.  This example
runs a panel of policies on three application profiles and prints, for each
criterion, which policy wins -- reproducing the qualitative message of the
paper:

* makespan-oriented moldable scheduling  -> MRT dual approximation,
* (weighted) average completion time     -> SMART shelves / WSPT ordering,
* both at once                           -> the bi-criteria doubling batches,
* on-line arrival streams                -> batch transform / backfilling,
* bags of small independent runs         -> divisible-load style policies
  (see examples/divisible_load.py and the grid examples).

Run with:  python examples/policy_comparison.py
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.criteria import makespan, mean_stretch, weighted_completion_time
from repro.core.job import Job
from repro.core.policies import (
    BatchOnlineScheduler,
    BiCriteriaScheduler,
    ConservativeBackfilling,
    EasyBackfilling,
    ListScheduler,
    MRTScheduler,
    SmartShelfScheduler,
)
from repro.experiments.reporting import ascii_table
from repro.metrics.ratios import schedule_ratios
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import (
    WorkloadConfig,
    generate_moldable_jobs,
    generate_rigid_jobs,
)

MACHINES = 64


def applications() -> Dict[str, List[Job]]:
    """Three application profiles inspired by the CIMENT communities."""

    return {
        # Off-line moldable batch (e.g. a campaign of numerical simulations).
        "moldable-batch": generate_moldable_jobs(
            60, MACHINES, config=WorkloadConfig(weight_scheme="work"), random_state=1
        ),
        # Rigid production jobs with priorities (weighted completion time matters).
        "rigid-weighted": generate_rigid_jobs(
            80, MACHINES, config=WorkloadConfig(weight_scheme="random"), random_state=2
        ),
        # On-line stream of interactive / debug jobs (stretch matters).
        "online-stream": poisson_arrivals(
            generate_moldable_jobs(
                60, MACHINES, config=WorkloadConfig(runtime_range=(0.5, 10.0)), random_state=3
            ),
            rate=2.0,
            random_state=3,
        ),
    }


def policy_panel():
    return [
        ListScheduler("lpt"),
        ListScheduler("wspt"),
        SmartShelfScheduler(),
        MRTScheduler(),
        BiCriteriaScheduler(),
        BatchOnlineScheduler(MRTScheduler()),
        ConservativeBackfilling(),
        EasyBackfilling(),
    ]


def main() -> None:
    for application, jobs in applications().items():
        rows = []
        for policy in policy_panel():
            try:
                if hasattr(policy, "schedule"):
                    schedule = policy.schedule(jobs, MACHINES)
            except Exception as error:  # a policy may not support a job type
                rows.append({"policy": policy.name, "error": str(error)[:40]})
                continue
            schedule.validate(check_release_dates=False)
            ratios = schedule_ratios(schedule, jobs, machine_count=MACHINES)
            rows.append(
                {
                    "policy": policy.name,
                    "makespan": makespan(schedule),
                    "cmax_ratio": ratios.makespan_ratio,
                    "sum_wC_ratio": ratios.weighted_completion_ratio,
                    "mean_stretch": mean_stretch(schedule),
                }
            )
        print(ascii_table(rows, title=f"\n=== application: {application} "
                                      f"({len(jobs)} jobs, {MACHINES} processors) ==="))
        numeric = [r for r in rows if "makespan" in r]
        best_cmax = min(numeric, key=lambda r: r["makespan"])["policy"]
        best_wc = min(numeric, key=lambda r: r["sum_wC_ratio"])["policy"]
        best_stretch = min(numeric, key=lambda r: r["mean_stretch"])["policy"]
        print(f"  best makespan            : {best_cmax}")
        print(f"  best weighted completion : {best_wc}")
        print(f"  best mean stretch        : {best_stretch}")


if __name__ == "__main__":
    main()
