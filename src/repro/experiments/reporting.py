"""Plain-text reporting: ASCII tables, ASCII line plots and CSV export.

The repository has no plotting dependency; the examples and benchmarks print
their results as aligned text tables and simple character plots (enough to
see the *shape* of the Figure 2 curves in a terminal), and can dump CSV for
external plotting.

Simulation results are reported through the unified
:class:`~repro.runtime.record.SimulationRecord` model:
:func:`simulation_table` renders any mix of records -- single cluster,
centralized grid, decentralized grid -- as one table (one
``record.summary()`` row each), and :func:`runs_table` lists a record's
individual job executions.  No function in this module special-cases a
result type.
"""

from __future__ import annotations

import io
import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def ascii_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned text table."""

    rows = list(rows)
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_cell(row.get(c, ""), precision) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), max((len(line[i]) for line in body), default=0))
        for i in range(len(columns))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for line in body:
        out.write("  ".join(cell.ljust(w) for cell, w in zip(line, widths)) + "\n")
    return out.getvalue()


def ascii_plot(
    series: Mapping[str, Mapping[float, float]],
    *,
    width: int = 70,
    height: int = 18,
    title: Optional[str] = None,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Very small ASCII line plot: one character per series per x position.

    ``series`` maps a series name to ``{x: y}``.  Values are scaled to the
    plotting box; each series uses the first letter of its name as marker.
    """

    points: List[Tuple[float, float]] = [
        (float(x), float(y)) for curve in series.values() for x, y in curve.items()
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if math.isclose(x_min, x_max):
        x_max = x_min + 1.0
    if math.isclose(y_min, y_max):
        y_max = y_min + 1.0
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return (height - 1) - int(round((y - y_min) / (y_max - y_min) * (height - 1)))

    for name, curve in series.items():
        marker = name[0].upper() if name else "*"
        for x, y in sorted(curve.items()):
            grid[to_row(float(y))][to_col(float(x))] = marker

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(f"{y_max:10.3f} +" + "".join(grid[0]) + "\n")
    for row in grid[1:-1]:
        out.write(" " * 11 + "|" + "".join(row) + "\n")
    out.write(f"{y_min:10.3f} +" + "".join(grid[-1]) + "\n")
    out.write(" " * 12 + f"{x_min:<10.1f}" + " " * max(0, width - 20) + f"{x_max:>10.1f}\n")
    legend = ", ".join(f"{name[0].upper()} = {name}" for name in series)
    out.write(f"{x_label}   [{legend}]" + (f"   y: {y_label}" if y_label else "") + "\n")
    return out.getvalue()


def simulation_table(
    records: Union[Mapping[str, Any], Iterable[Any]],
    *,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """One row per :class:`~repro.runtime.record.SimulationRecord`.

    ``records`` is a mapping from label to record (e.g. the output of
    :func:`repro.simulation.cluster_sim.compare_policies`) or a plain
    iterable of records (labelled by their policy name).  Records from
    different organisations mix freely: the columns are the union of every
    record's summary keys.
    """

    if isinstance(records, Mapping):
        items = list(records.items())
    else:
        items = [(record.policy, record) for record in records]
    rows: List[Dict[str, Any]] = [
        {"label": label, **record.summary()} for label, record in items
    ]
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return ascii_table(rows, columns=columns, precision=precision, title=title)


def runs_table(
    record: Any,
    *,
    limit: Optional[int] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """The individual job executions of one record, ordered by start time."""

    runs = record.runs()
    if limit is not None:
        runs = runs[:limit]
    return ascii_table([r.as_dict() for r in runs], precision=precision, title=title)


def to_csv(rows: Sequence[Mapping[str, Any]], *, columns: Optional[Sequence[str]] = None) -> str:
    """Serialise dict rows to CSV text.

    Columns default to the union of every row's keys in first-seen order,
    so heterogeneous sweeps (a metric appearing only in later rows) lose
    nothing.  Values containing the delimiter, quotes or line breaks are
    quoted per RFC 4180.
    """

    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        seen = set()
        columns = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    columns.append(key)
    out = io.StringIO()
    out.write(",".join(str(c) for c in columns) + "\n")
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            text = str(value)
            if any(ch in text for ch in (",", '"', "\n", "\r")):
                text = '"' + text.replace('"', '""') + '"'
            cells.append(text)
        out.write(",".join(cells) + "\n")
    return out.getvalue()
