"""Every policy is constructible by name and runs on the unified runtime."""

import pytest

from repro.core.policies import (
    MoldableAllocator,
    PlannedPolicy,
    SchedulingPolicy,
    make_policy,
    policy_names,
    register_policy,
)
from repro.simulation.cluster_sim import ClusterSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import WorkloadConfig, generate_moldable_jobs


def online_workload(n_jobs=10, machines=16, seed=9):
    jobs = generate_moldable_jobs(
        n_jobs, machines, config=WorkloadConfig(weight_scheme="work"), random_state=seed
    )
    return poisson_arrivals(jobs, rate=1.0, random_state=seed)


class TestRegistry:
    def test_known_names_cover_the_whole_policy_zoo(self):
        names = policy_names()
        for expected in (
            "fifo", "backfill", "smallest-first",           # queue policies
            "lpt", "spt", "wspt", "list",                   # list scheduling
            "shelf", "smart-shelves",                       # shelf packing
            "mrt", "greedy-moldable",                       # moldable makespan
            "bicriteria", "batch-online", "batch-mrt",      # on-line transforms
            "conservative-bf", "easy-bf",                   # backfilling
            "mixed", "reservation-aware",                   # section 5.1
        ):
            assert expected in names

    @pytest.mark.parametrize("name", sorted({
        "fifo", "backfill", "smallest-first", "lpt", "spt", "wspt", "list",
        "shelf", "smart-shelves", "mrt", "greedy-moldable", "bicriteria",
        "batch-online", "batch-mrt", "conservative-bf", "easy-bf", "mixed",
        "reservation-aware",
    }))
    def test_every_policy_constructs_and_drives_the_cluster_runtime(self, name):
        policy = make_policy(name)
        assert isinstance(policy, SchedulingPolicy)
        jobs = online_workload()
        result = ClusterSimulator(16, policy=name).run(jobs)
        result.schedule.validate()
        assert len(result.schedule) == len(jobs)
        assert result.trace.count("complete") == len(jobs)

    def test_registry_is_exhaustive(self):
        """Every registered name must actually run on the runtime (guards
        future registrations against silently broken adapters)."""

        jobs = online_workload(6, 8, seed=13)
        for name in policy_names():
            result = ClusterSimulator(8, policy=name).run(jobs)
            assert len(result.schedule) == 6, f"policy {name!r} lost jobs"

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("magic")
        with pytest.raises(ValueError):
            ClusterSimulator(8, policy="magic")

    def test_instances_pass_through(self):
        policy = make_policy("fifo")
        assert make_policy(policy) is policy

    def test_overrides_alongside_an_instance_are_rejected(self):
        policy = make_policy("fifo")
        with pytest.raises(ValueError, match="already-constructed"):
            make_policy(policy, allocator=MoldableAllocator("min_runtime"))
        with pytest.raises(ValueError, match="already-constructed"):
            make_policy(policy, strategy="a_priori")

    def test_collisions_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("fifo", lambda **kwargs: None)

    def test_factory_kwargs_forwarded(self):
        mixed = make_policy("mixed", strategy="a_priori")
        assert "a_priori" in mixed.scheduler.name
        ordered = make_policy("list", order="spt")
        assert ordered.scheduler.name == "list-spt"

    def test_allocator_override(self):
        policy = make_policy("backfill", allocator=MoldableAllocator("min_runtime"))
        assert policy.allocator.strategy == "min_runtime"


class TestPlannedAdapter:
    def test_plan_order_is_respected(self):
        """The planned adapter dispatches in (planned start, name) order."""

        policy = make_policy("wspt")
        assert isinstance(policy, PlannedPolicy)
        jobs = online_workload(8, 8, seed=21)
        result = ClusterSimulator(8, policy=policy).run(jobs)
        assert len(result.schedule) == 8

    def test_replans_when_the_queue_changes(self):
        policy = make_policy("lpt")
        jobs = online_workload(6, 8, seed=22)
        ClusterSimulator(8, policy=policy).run(jobs)
        first_plan = dict(policy._plan)
        assert first_plan  # a plan was built and retained

    def test_reused_simulator_never_applies_a_stale_plan(self):
        """Same job *names*, different jobs: the second run must re-plan."""

        from repro.core.job import RigidJob

        simulator = ClusterSimulator(8, policy=make_policy("lpt"))
        first = simulator.run(
            [RigidJob(name="a", nbproc=4, duration=2.0),
             RigidJob(name="b", nbproc=4, duration=1.0)]
        )
        assert first.schedule["a"].nbproc == 4
        second = simulator.run(
            [RigidJob(name="a", nbproc=1, duration=5.0),
             RigidJob(name="b", nbproc=2, duration=1.0)]
        )
        assert second.schedule["a"].nbproc == 1
        assert second.schedule["b"].nbproc == 2
