"""Unit tests of the three rigid/moldable mixing strategies (section 5.1)."""

import pytest

from repro.core.bounds import makespan_lower_bound
from repro.core.criteria import makespan
from repro.core.job import MoldableJob, RigidJob
from repro.core.policies.rigid_moldable_mix import STRATEGIES, MixedScheduler
from repro.workload.models import generate_mixed_jobs


@pytest.fixture
def mixed_jobs():
    return generate_mixed_jobs(24, 16, rigid_fraction=0.4, random_state=21)


class TestMixedScheduler:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            MixedScheduler("interleave")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_schedule_everything(self, strategy, mixed_jobs):
        scheduler = MixedScheduler(strategy)
        schedule = scheduler.schedule(mixed_jobs, 16)
        schedule.validate()
        assert len(schedule) == len(mixed_jobs)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_empty_instance(self, strategy):
        assert len(MixedScheduler(strategy).schedule([], 8)) == 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_pure_rigid_instance(self, strategy):
        jobs = [RigidJob(name=f"r{i}", nbproc=1 + i % 4, duration=float(i + 1))
                for i in range(8)]
        schedule = MixedScheduler(strategy).schedule(jobs, 8)
        schedule.validate()
        assert len(schedule) == 8

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_pure_moldable_instance(self, strategy):
        jobs = [MoldableJob(name=f"m{i}", runtimes=[8.0, 5.0, 4.0]) for i in range(6)]
        schedule = MixedScheduler(strategy).schedule(jobs, 8)
        schedule.validate()
        assert len(schedule) == 6

    def test_makespans_stay_within_reasonable_factor(self, mixed_jobs):
        """All three strategies stay within a small constant of the lower bound
        ("these ideas probably lead to an increased performance ratio")."""

        bound = makespan_lower_bound(mixed_jobs, 16)
        for strategy in STRATEGIES:
            schedule = MixedScheduler(strategy).schedule(mixed_jobs, 16)
            assert makespan(schedule) <= 4.0 * bound + 1e-9

    def test_first_fit_batch_helps_small_weighted_jobs(self):
        """The first-fit-batch strategy lets a small rigid job run early while
        the 'separate' strategy makes it wait for all the moldable work."""

        jobs = [
            MoldableJob(name="big-moldable", runtimes=[100.0, 60.0, 40.0, 30.0], weight=1.0),
            RigidJob(name="tiny-rigid", nbproc=1, duration=1.0, weight=10.0),
        ]
        separate = MixedScheduler("separate").schedule(jobs, 4)
        first_fit = MixedScheduler("first_fit_batch").schedule(jobs, 4)
        assert first_fit["tiny-rigid"].completion < separate["tiny-rigid"].completion

    def test_policy_names(self):
        assert MixedScheduler("separate").name == "mixed-separate"
        assert MixedScheduler("a_priori").name == "mixed-a_priori"
        assert MixedScheduler("first_fit_batch").name == "mixed-first_fit_batch"
