"""FIG2-CMAX: Figure 2 (bottom) -- Cmax ratio of the bi-criteria algorithm.

Same simulation as FIG2-WC, reporting the makespan ratio.  In the paper the
Cmax ratios lie between 1 and ~2.2 and decrease as the number of tasks grows
(many tasks pack well on 100 machines); the shape assertions below check
boundedness and the decreasing trend.

The sweep is declared through the scenario registry: the benchmark derives
its configuration from the registered ``fig2.bicriteria`` spec instead of
hand-wiring the experiment (the composer produces cells bit-identical to the
historical ``run_figure2`` call).
"""

from __future__ import annotations


from repro.experiments.figure2 import figure2_curves, points_from_rows
from repro.experiments.reporting import ascii_plot, ascii_table
from repro.scenarios import get

TASK_COUNTS = (50, 100, 200, 400, 700, 1000)

SPEC = get("fig2.bicriteria").evolve(
    repetitions=2,
    seed=3004,
    sweep={
        "workload.family": ["non_parallel", "parallel"],
        "workload.n_tasks": list(TASK_COUNTS),
    },
)

def test_figure2_makespan_ratio(run_scenario_sweep, report):
    result = run_scenario_sweep(SPEC)
    curves = figure2_curves(points_from_rows(result.rows))["cmax"]

    rows = [
        {"n_tasks": n, "non_parallel": curves["non_parallel"][n], "parallel": curves["parallel"][n]}
        for n in TASK_COUNTS
    ]
    report(
        "Figure 2 (bottom): Cmax ratio vs number of tasks (100 machines)",
        ascii_table(rows)
        + "\n"
        + ascii_plot(
            {"parallel": curves["parallel"], "non parallel": curves["non_parallel"]},
            title="Cmax ratio",
            x_label="number of tasks",
        ),
    )

    for family in ("parallel", "non_parallel"):
        curve = curves[family]
        values = [curve[n] for n in TASK_COUNTS]
        # Bounded by a small constant and decreasing towards 1 for large n.
        assert all(1.0 - 1e-9 <= v <= 4.5 for v in values), family
        assert values[-1] <= values[0] + 1e-9, family
        assert values[-1] <= 2.2, family
