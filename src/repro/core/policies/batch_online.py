"""On-line batch scheduling (section 4.2): the Shmoys-Wein-Williamson transform.

"In this context, the jobs are gathered into sets (called batches) that are
scheduled together.  All further arriving tasks are delayed to be considered
in the next batch.  This is a nice way for dealing with on-line algorithms by
a succession of off-line problems."

The generic result recalled by the paper: an algorithm for independent tasks
*without* release dates with performance ratio ``rho`` yields a batch
algorithm for unknown release dates with ratio ``2 rho``.  Plugging in the
off-line moldable algorithm of section 4.1 (ratio ``3/2 + eps``) gives a
``3 + eps`` approximation of the on-line moldable makespan -- this is the
combination verified by the ``RATIO-BATCH`` benchmark.

The implementation is a *simulated on-line* policy: it receives the full
instance (with release dates) but only looks at a job once the constructed
schedule reaches its release date.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.allocation import Schedule
from repro.core.job import Job, validate_jobs
from repro.core.policies.base import (
    OfflineScheduler,
    ReleaseDateScheduler,
    SchedulerError,
)
from repro.core.policies.mrt import MRTScheduler


class BatchOnlineScheduler(ReleaseDateScheduler):
    """Batch transform of an off-line policy for jobs with release dates.

    Parameters
    ----------
    offline:
        The off-line policy run on each batch (default: the MRT
        dual-approximation algorithm, which reproduces the ``3 + eps``
        result of section 4.2).
    """

    def __init__(self, offline: Optional[OfflineScheduler] = None) -> None:
        self.offline = offline or MRTScheduler()
        self.name = f"batch({self.offline.name})"

    def schedule(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        remaining = sorted(jobs, key=lambda j: (j.release_date, j.name))
        result = Schedule(machine_count)
        # The first batch starts when the first job arrives.
        now = remaining[0].release_date
        batch_index = 0
        while remaining:
            # Collect every job already released at the batch start.
            ready = [j for j in remaining if j.release_date <= now + 1e-12]
            if not ready:
                # Idle until the next release.
                now = min(j.release_date for j in remaining)
                continue
            for job in ready:
                remaining.remove(job)
            batch_schedule = self.offline.schedule(ready, machine_count, start_time=now)
            batch_schedule.validate(check_release_dates=False)
            result = result.merge(batch_schedule)
            batch_makespan = batch_schedule.makespan()
            if batch_makespan <= now + 1e-12:
                raise SchedulerError(
                    f"off-line policy {self.offline.name!r} returned an empty batch"
                )
            now = batch_makespan
            batch_index += 1
        return result

    def batch_count(self, jobs: Sequence[Job], machine_count: int) -> int:
        """Number of batches the transform would use on this instance.

        Convenience introspection helper used by tests and reports.
        """

        jobs = validate_jobs(jobs)
        if not jobs:
            return 0
        remaining = sorted(jobs, key=lambda j: (j.release_date, j.name))
        now = remaining[0].release_date
        batches = 0
        while remaining:
            ready = [j for j in remaining if j.release_date <= now + 1e-12]
            if not ready:
                now = min(j.release_date for j in remaining)
                continue
            for job in ready:
                remaining.remove(job)
            batch_schedule = self.offline.schedule(ready, machine_count, start_time=now)
            now = batch_schedule.makespan()
            batches += 1
        return batches
