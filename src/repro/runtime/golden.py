"""Golden-digest equivalence: canonical digests of simulator behavior.

The unified runtime refactor (and any future change to the simulation hot
path) must not change simulator *behavior*.  This module pins behavior with
SHA-256 digests over canonical, repr-exact serializations of

* the result of one fixed, seeded run of each legacy simulator entry point
  (:class:`~repro.simulation.cluster_sim.ClusterSimulator`,
  :class:`~repro.simulation.grid_sim.CentralizedGridSimulator`,
  :class:`~repro.simulation.decentralized.DecentralizedGridSimulator`),
  including the full event trace, and
* the result rows of every registered scenario's smoke tier.

``python -m repro.runtime.golden capture [path]`` records the digests of the
current code; ``tests/runtime/test_equivalence.py`` recomputes them and
fails on any drift.  The committed ``tests/runtime/goldens.json`` was
captured from the pre-refactor simulators, so matching it proves the
runtime reproduces the legacy event loops bit for bit.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

#: Default location of the committed golden file, relative to the repo root.
DEFAULT_GOLDEN_PATH = "tests/runtime/goldens.json"


def digest_of(payload: Any) -> str:
    """Deterministic SHA-256 over an arbitrary payload (repr for non-JSON)."""

    blob = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# Canonical serializations
# ---------------------------------------------------------------------------


def schedule_payload(schedule: Any) -> List[Any]:
    """Repr-exact serialization of a :class:`~repro.core.allocation.Schedule`."""

    return [
        (
            entry.job.name,
            repr(entry.start),
            list(entry.processors),
            repr(entry.allocation.runtime),
        )
        for entry in schedule
    ]


def trace_payload(trace: Any) -> List[Any]:
    """Repr-exact serialization of a :class:`~repro.simulation.tracing.Trace`."""

    return [
        (repr(e.time), e.kind, e.job, e.cluster, list(e.processors), e.info)
        for e in trace
    ]


def cluster_result_payload(result: Any) -> Dict[str, Any]:
    """Canonical payload of a single-cluster simulation result."""

    return {
        "policy": result.policy,
        "machine_count": result.machine_count,
        "schedule": schedule_payload(result.schedule),
        "trace": trace_payload(result.trace),
        "criteria": {k: repr(v) for k, v in result.criteria.as_dict().items()},
        "ratios": {k: repr(v) for k, v in result.ratios.as_dict().items()},
    }


def centralized_result_payload(result: Any) -> Dict[str, Any]:
    """Canonical payload of a centralized (best-effort) grid result."""

    return {
        "horizon": repr(result.horizon),
        "kills": result.kills,
        "launches": result.launches,
        "bag_completion": {k: repr(v) for k, v in sorted(result.bag_completion.items())},
        "runs_completed": dict(sorted(result.runs_completed.items())),
        "utilization": {k: repr(v) for k, v in sorted(result.utilization.items())},
        "schedules": {
            name: schedule_payload(s) for name, s in sorted(result.local_schedules.items())
        },
        "criteria": {
            name: {k: repr(v) for k, v in c.as_dict().items()}
            for name, c in sorted(result.local_criteria.items())
        },
        "trace": trace_payload(result.trace),
    }


def decentralized_result_payload(result: Any) -> Dict[str, Any]:
    """Canonical payload of a decentralized (load-exchange) grid result."""

    return {
        "horizon": repr(result.horizon),
        "migrations": result.migrations,
        "migrated_jobs": list(result.migrated_jobs),
        "mean_flow": repr(result.mean_flow),
        "max_flow": repr(result.max_flow),
        "fairness": {k: repr(v) for k, v in sorted(result.fairness.as_dict().items())},
        "schedules": {
            name: schedule_payload(s) for name, s in sorted(result.schedules.items())
        },
        "criteria": {
            name: {k: repr(v) for k, v in c.as_dict().items()}
            for name, c in sorted(result.criteria.items())
        },
        "trace": trace_payload(result.trace),
    }


# ---------------------------------------------------------------------------
# The three canonical legacy-simulator cases
# ---------------------------------------------------------------------------


def run_cluster_case() -> Dict[str, Any]:
    """Fixed seeded single-cluster run exercising all three queue policies."""

    from repro.simulation.cluster_sim import ClusterSimulator
    from repro.workload.communities import community_workload

    jobs = community_workload("computer-science", 120, 64, random_state=7)
    payload = {}
    for policy in ("fifo", "backfill", "smallest-first"):
        result = ClusterSimulator(64, policy=policy).run(jobs)
        payload[policy] = cluster_result_payload(result)
    return payload


def run_centralized_case() -> Dict[str, Any]:
    """Fixed seeded CIMENT run with best-effort bags, kills and resubmits."""

    from repro.platform.ciment import ciment_grid
    from repro.simulation.grid_sim import CentralizedGridSimulator
    from repro.workload.communities import community_workload, grid_workload

    grid = ciment_grid()
    local = {}
    bags = []
    for index, cluster in enumerate(sorted(grid, key=lambda c: c.name)):
        local[cluster.name] = community_workload(
            cluster.community, 6, cluster.processor_count, random_state=100 + index
        )
        bags.extend(grid_workload(cluster.community, random_state=200 + index))
    result = CentralizedGridSimulator(grid, local_policy="backfill").run(local, bags)
    return centralized_result_payload(result)


def run_decentralized_case() -> Dict[str, Any]:
    """Fixed seeded two-cluster run with migrations under load imbalance."""

    from repro.platform.generators import homogeneous_cluster
    from repro.platform.grid import GridLink, LightGrid
    from repro.simulation.decentralized import DecentralizedGridSimulator
    from repro.workload.arrivals import poisson_arrivals
    from repro.workload.models import generate_moldable_jobs

    grid = LightGrid(
        "golden-duo",
        [
            homogeneous_cluster("busy", 8, community="busy-community"),
            homogeneous_cluster("idle", 8, community="idle-community"),
        ],
        [GridLink("busy", "idle", bandwidth=1000.0, latency=0.01)],
    )
    jobs = generate_moldable_jobs(40, 8, random_state=11)
    jobs = poisson_arrivals(jobs, rate=4.0, random_state=11)
    simulator = DecentralizedGridSimulator(grid, imbalance_threshold=1.0)
    result = simulator.run({"busy": jobs, "idle": []})
    return decentralized_result_payload(result)


SIMULATOR_CASES = {
    "cluster": run_cluster_case,
    "grid-centralized": run_centralized_case,
    "grid-decentralized": run_decentralized_case,
}


def simulator_digests() -> Dict[str, str]:
    """Digest of each canonical legacy-simulator case."""

    return {name: digest_of(case()) for name, case in SIMULATOR_CASES.items()}


def scenario_digests(names: Any = None, *, executor: Any = None) -> Dict[str, str]:
    """Smoke-tier row digests of the registered scenarios.

    ``names=None`` runs every registered scenario; a golden comparison
    should pass the names stored in the golden file so newly registered
    scenarios do not need retroactive goldens.
    """

    import repro.scenarios as scenarios
    from repro.scenarios.composer import rows_digest, run_scenario

    digests = {}
    for name in names if names is not None else scenarios.names():
        spec = scenarios.get(name)
        result = run_scenario(spec, smoke=True, executor=executor)
        digests[name] = rows_digest(result.rows)
    return digests


def capture() -> Dict[str, Any]:
    """Compute the full golden payload for the current code."""

    return {
        "simulators": simulator_digests(),
        "scenarios": scenario_digests(),
    }


def main(argv: Any = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] != "capture":
        print("usage: python -m repro.runtime.golden capture [path]", file=sys.stderr)
        return 2
    path = Path(argv[1] if len(argv) > 1 else DEFAULT_GOLDEN_PATH)
    payload = capture()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    total = len(payload["simulators"]) + len(payload["scenarios"])
    print(f"wrote {total} golden digests to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
