"""Performance ratios of a schedule against lower bounds.

Figure 2 of the paper plots, for each simulated instance, the ratio between
the value achieved by the bi-criteria algorithm and the optimal value for the
two criteria ``Cmax`` and ``sum w_i C_i``.  Since the optima are intractable,
this module (like the paper's simulation) uses the lower bounds of
:mod:`repro.core.bounds`; reported ratios are therefore upper estimates of
the true ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.allocation import Schedule
from repro.core.bounds import (
    makespan_lower_bound,
    performance_ratio,
    stretch_lower_bound,
    sum_completion_lower_bound,
    weighted_completion_lower_bound,
)
from repro.core.criteria import (
    makespan,
    mean_stretch,
    sum_completion_times,
    weighted_completion_time,
)
from repro.core.job import Job


@dataclass(frozen=True)
class RatioReport:
    """Achieved values, lower bounds and ratios for the main criteria."""

    n_jobs: int
    machine_count: int
    makespan: float
    makespan_bound: float
    makespan_ratio: float
    weighted_completion: float
    weighted_completion_bound: float
    weighted_completion_ratio: float
    sum_completion: float
    sum_completion_bound: float
    sum_completion_ratio: float
    mean_stretch: float
    mean_stretch_bound: float
    mean_stretch_ratio: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_jobs": self.n_jobs,
            "machine_count": self.machine_count,
            "makespan": self.makespan,
            "makespan_bound": self.makespan_bound,
            "makespan_ratio": self.makespan_ratio,
            "weighted_completion": self.weighted_completion,
            "weighted_completion_bound": self.weighted_completion_bound,
            "weighted_completion_ratio": self.weighted_completion_ratio,
            "sum_completion": self.sum_completion,
            "sum_completion_bound": self.sum_completion_bound,
            "sum_completion_ratio": self.sum_completion_ratio,
            "mean_stretch": self.mean_stretch,
            "mean_stretch_bound": self.mean_stretch_bound,
            "mean_stretch_ratio": self.mean_stretch_ratio,
        }


def schedule_ratios(
    schedule: Schedule,
    jobs: Optional[Sequence[Job]] = None,
    *,
    machine_count: Optional[int] = None,
) -> RatioReport:
    """Compute the Figure-2 style ratios of a schedule.

    ``jobs`` defaults to the jobs present in the schedule; pass the original
    instance explicitly when some jobs were rejected.
    """

    jobs = list(jobs) if jobs is not None else schedule.jobs
    machine_count = machine_count or schedule.machine_count

    cmax = makespan(schedule)
    cmax_lb = makespan_lower_bound(jobs, machine_count)
    wc = weighted_completion_time(schedule)
    wc_lb = weighted_completion_lower_bound(jobs, machine_count)
    sc = sum_completion_times(schedule)
    sc_lb = sum_completion_lower_bound(jobs, machine_count)
    stretch = mean_stretch(schedule)
    stretch_lb = stretch_lower_bound(jobs)

    return RatioReport(
        n_jobs=len(jobs),
        machine_count=machine_count,
        makespan=cmax,
        makespan_bound=cmax_lb,
        makespan_ratio=performance_ratio(cmax, cmax_lb),
        weighted_completion=wc,
        weighted_completion_bound=wc_lb,
        weighted_completion_ratio=performance_ratio(wc, wc_lb),
        sum_completion=sc,
        sum_completion_bound=sc_lb,
        sum_completion_ratio=performance_ratio(sc, sc_lb),
        mean_stretch=stretch,
        mean_stretch_bound=stretch_lb,
        mean_stretch_ratio=performance_ratio(stretch, stretch_lb),
    )
