"""Golden-digest equivalence suite.

``goldens.json`` was captured from the pre-refactor simulators (the three
hand-rolled event loops) by ``python -m repro.runtime.golden capture``.
These tests recompute every digest with the current code: a mismatch means
the unified runtime changed simulator *behavior*, not just its structure.

The scenario digests are checked both serially and through a 2-process
pool (``REPRO_JOBS=2`` equivalent), proving the refactor also preserved the
parallel-harness bit-identity guarantee.
"""

import json
from pathlib import Path

import pytest

from repro.runtime import golden

GOLDENS = json.loads((Path(__file__).parent / "goldens.json").read_text())


@pytest.mark.parametrize("name", sorted(GOLDENS["simulators"]))
def test_legacy_simulator_digest_is_bit_identical(name):
    payload = golden.SIMULATOR_CASES[name]()
    assert golden.digest_of(payload) == GOLDENS["simulators"][name], (
        f"simulator case {name!r} drifted from its pre-refactor golden"
    )


@pytest.mark.parametrize("name", sorted(GOLDENS["scenarios"]))
def test_scenario_smoke_digest_is_bit_identical(name):
    digests = golden.scenario_digests([name], executor="serial")
    assert digests[name] == GOLDENS["scenarios"][name], (
        f"scenario {name!r} smoke digest drifted from its pre-refactor golden"
    )


def test_scenario_smoke_digests_with_two_process_pool():
    names = sorted(GOLDENS["scenarios"])
    digests = golden.scenario_digests(names, executor=2)
    assert digests == GOLDENS["scenarios"]


def test_capture_covers_new_scenarios_too():
    """A fresh capture includes every *registered* scenario (new ones get
    goldens when the file is next regenerated; old ones stay pinned)."""

    import repro.scenarios as scenarios

    assert set(GOLDENS["scenarios"]) <= set(scenarios.names())
    assert {"grid.hetero-policies", "cluster.policy-switch"} <= set(scenarios.names())
