"""Unit tests of the centralized best-effort grid simulator (section 5.2)."""

import pytest

from repro.core.job import ParametricSweep, RigidJob
from repro.platform.ciment import ciment_grid
from repro.platform.generators import homogeneous_cluster
from repro.platform.grid import LightGrid
from repro.simulation.grid_sim import CentralizedGridSimulator, GridServer
from repro.workload.communities import community_workload
from repro.workload.parametric import generate_parametric_bags


def tiny_grid():
    return LightGrid(
        "tiny",
        [homogeneous_cluster("alpha", 4, community="a"),
         homogeneous_cluster("beta", 2, community="b")],
    )


class TestGridServer:
    def test_run_lifecycle(self):
        bags = [ParametricSweep(name="bag", n_runs=3, run_time=1.0)]
        server = GridServer(bags)
        assert server.remaining_runs == 3
        run = server.next_run()
        server.complete(run, now=5.0)
        assert server.completed["bag"] == 1
        assert server.bag_completion["bag"] is None
        # Kill + resubmit puts the run back at the head of the queue.
        run2 = server.next_run()
        server.resubmit(run2)
        assert server.kills == 1
        assert server.remaining_runs == 2
        assert server.next_run().index == run2.index

    def test_duplicate_bags_rejected(self):
        bags = [ParametricSweep(name="x", n_runs=1, run_time=1.0)] * 2
        with pytest.raises(ValueError):
            GridServer(bags)


class TestCentralizedGridSimulator:
    def test_unknown_cluster_rejected(self):
        simulator = CentralizedGridSimulator(tiny_grid())
        with pytest.raises(ValueError):
            simulator.run({"ghost": []})
        with pytest.raises(ValueError):
            CentralizedGridSimulator(tiny_grid(), local_policy="magic")

    def test_local_jobs_only(self):
        grid = tiny_grid()
        local = {"alpha": [RigidJob(name="a", nbproc=2, duration=4.0)],
                 "beta": [RigidJob(name="b", nbproc=1, duration=2.0)]}
        result = CentralizedGridSimulator(grid).run(local)
        assert result.local_criteria["alpha"].makespan == pytest.approx(4.0)
        assert result.local_criteria["beta"].makespan == pytest.approx(2.0)
        assert result.kills == 0
        assert result.total_runs_completed == 0

    def test_grid_jobs_fill_idle_clusters(self):
        grid = tiny_grid()
        bags = [ParametricSweep(name="bag", n_runs=12, run_time=1.0)]
        result = CentralizedGridSimulator(grid).run({}, bags)
        assert result.total_runs_completed == 12
        assert result.bag_completion["bag"] is not None
        # 6 processors serving 12 unit runs: done in 2 time units.
        assert result.bag_completion["bag"] == pytest.approx(2.0, rel=0.3)
        assert result.kills == 0
        assert result.grid_throughput() > 0

    def test_local_jobs_kill_best_effort_runs(self):
        grid = tiny_grid()
        bags = [ParametricSweep(name="bag", n_runs=200, run_time=5.0)]
        # A local job arriving at t=1 needs the whole alpha cluster while all
        # processors hold long best-effort runs: kills must occur.
        local = {"alpha": [RigidJob(name="urgent", nbproc=4, duration=3.0, release_date=1.0)]}
        result = CentralizedGridSimulator(grid).run(local, bags)
        assert result.kills >= 4
        assert result.trace.count("kill") == result.kills
        assert result.trace.count("resubmit") == result.kills
        # The local job started as soon as it was submitted.
        assert result.local_schedules["alpha"]["urgent"].start == pytest.approx(1.0)

    def test_non_disturbance_invariant(self):
        """Local jobs complete exactly as if the grid jobs did not exist."""

        grid = tiny_grid()
        local = {
            "alpha": community_workload("computer-science", 10, 4, random_state=1),
            "beta": community_workload("medical-research", 6, 2, random_state=2),
        }
        bags = generate_parametric_bags(3, runs_range=(20, 40), run_time_range=(0.5, 1.0),
                                        random_state=3)
        with_grid = CentralizedGridSimulator(grid).run(local, bags)
        without_grid = CentralizedGridSimulator(grid, best_effort_enabled=False).run(local, [])
        for cluster in ("alpha", "beta"):
            for entry in without_grid.local_schedules[cluster]:
                other = with_grid.local_schedules[cluster][entry.job.name]
                assert other.start == pytest.approx(entry.start)
                assert other.completion == pytest.approx(entry.completion)

    def test_best_effort_disabled(self):
        grid = tiny_grid()
        bags = [ParametricSweep(name="bag", n_runs=5, run_time=1.0)]
        result = CentralizedGridSimulator(grid, best_effort_enabled=False).run({}, bags)
        assert result.total_runs_completed == 0
        assert result.launches == 0

    def test_killed_work_is_eventually_completed(self):
        grid = tiny_grid()
        bags = [ParametricSweep(name="bag", n_runs=30, run_time=2.0)]
        local = {"alpha": [RigidJob(name=f"l{i}", nbproc=2, duration=3.0, release_date=float(i * 2))
                           for i in range(5)]}
        result = CentralizedGridSimulator(grid).run(local, bags)
        assert result.runs_completed["bag"] == 30
        assert result.bag_completion["bag"] is not None
        assert result.launches == 30 + result.kills

    def test_utilization_reported_per_cluster(self):
        grid = tiny_grid()
        bags = [ParametricSweep(name="bag", n_runs=24, run_time=1.0)]
        result = CentralizedGridSimulator(grid).run({}, bags)
        assert set(result.utilization) == {"alpha", "beta"}
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in result.utilization.values())

    def test_ciment_scale_simulation(self):
        """Smoke test on the real Figure-3 platform with community workloads."""

        grid = ciment_grid()
        local = {
            "xeon-cluster": community_workload("numerical-physics", 8, 96, random_state=4),
            "icluster-itanium": community_workload("computer-science", 15, 208, random_state=5),
        }
        bags = generate_parametric_bags(2, runs_range=(50, 100), run_time_range=(0.2, 0.5),
                                        random_state=6)
        result = CentralizedGridSimulator(grid, local_policy="backfill").run(local, bags)
        assert result.total_runs_completed == sum(b.n_runs for b in bags)
        for name, criteria in result.local_criteria.items():
            assert criteria.makespan >= 0.0
