"""Execution backends for the sweep engine.

An :class:`Executor` maps a cell function over an ordered list of cells and
yields the outcomes *in submission order*, streaming them as they complete.
Two backends are provided:

* :class:`SerialExecutor` -- runs cells inline, one at a time;
* :class:`ProcessPoolExecutor` -- fans cells out to a ``multiprocessing``
  pool with chunked dispatch (``Pool.imap`` preserves order while letting
  workers race ahead within their chunks).

Because every cell carries its own deterministic seed, both backends produce
bit-identical rows in the same order; the pool only changes the wall clock.

The default backend is selected by the ``REPRO_JOBS`` environment variable:
unset or ``1`` means serial, an integer ``N > 1`` means a pool of ``N``
workers, and ``0`` or ``auto`` means one worker per CPU.  Further forms
select the comm-based distributed runtime of :mod:`repro.distributed`
(resolved lazily, so this module stays import-light):
``REPRO_JOBS=tcp://host:port`` binds a campaign scheduler at that address
and waits for externally started workers, ``distributed`` self-spawns a
local mini-cluster on an ephemeral loopback port, and any other registered
comm scheme address -- e.g. ``inproc://`` for a socketless in-process
fleet -- runs the same scheduler over that backend with one self-spawned
worker per CPU.  Every backend honours the same contract -- outcomes stream
back in submission order and, because each cell carries its own
deterministic seed, rows are bit-identical across backends.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import Callable, Iterator, Optional, Sequence, Union

from repro.experiments.grid import Cell, CellOutcome

#: Environment variable selecting the default executor (see module docstring).
JOBS_ENV_VAR = "REPRO_JOBS"

ExecutorSpec = Union[None, str, int, "Executor"]

#: One-line summary of every accepted executor spec, reused by error messages.
SPEC_FORMS = (
    "'serial' (or 1), 'process'/'auto' (or 0), an integer job count, "
    "'distributed' (local mini-cluster), 'tcp://HOST:PORT' (bind a "
    "distributed campaign scheduler there for external workers), or "
    "'inproc://NAME' (socketless in-process fleet)"
)


class ExecutorSpecError(ValueError):
    """An executor spec (argument or ``REPRO_JOBS`` value) is not understood."""


class Executor:
    """Maps a cell function over cells, yielding outcomes in order."""

    name = "executor"

    def map(
        self,
        fn: Callable[[Cell], CellOutcome],
        cells: Sequence[Cell],
    ) -> Iterator[CellOutcome]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every cell inline, in order (the reference backend)."""

    name = "serial"

    def map(
        self,
        fn: Callable[[Cell], CellOutcome],
        cells: Sequence[Cell],
    ) -> Iterator[CellOutcome]:
        return (fn(cell) for cell in cells)


class ProcessPoolExecutor(Executor):
    """Fan cells out to a ``multiprocessing`` pool, preserving order.

    Parameters
    ----------
    jobs:
        Number of worker processes (default: one per CPU).
    chunk_size:
        Cells handed to a worker per dispatch.  Larger chunks amortise IPC
        for cheap cells; smaller chunks balance uneven cells.  The default
        aims at ~4 chunks per worker.
    start_method:
        ``multiprocessing`` start method (``fork`` / ``spawn`` / ...).
        ``None`` prefers ``fork`` when the platform offers it: forked
        workers inherit the parent's modules, so cell functions defined in
        pytest-loaded benchmark modules (which a ``spawn``/``forkserver``
        child cannot re-import) stay picklable by reference.  On platforms
        without ``fork`` the default start method is used and cell
        functions must live in importable modules.
    """

    name = "process"

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs or cpu_count()
        self.chunk_size = chunk_size
        self.start_method = start_method

    def __repr__(self) -> str:
        return f"ProcessPoolExecutor(jobs={self.jobs})"

    def map(
        self,
        fn: Callable[[Cell], CellOutcome],
        cells: Sequence[Cell],
    ) -> Iterator[CellOutcome]:
        cells = list(cells)
        workers = min(self.jobs, len(cells))
        if workers <= 1:
            # A pool of one only adds pickling overhead.
            return SerialExecutor().map(fn, cells)
        chunk = self.chunk_size or max(1, math.ceil(len(cells) / (workers * 4)))
        method = self.start_method
        if method is None and "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        context = multiprocessing.get_context(method)

        def stream() -> Iterator[CellOutcome]:
            with context.Pool(processes=workers) as pool:
                for outcome in pool.imap(fn, cells, chunksize=chunk):
                    yield outcome

        return stream()


def cpu_count() -> int:
    """Usable CPUs (honours affinity masks when the platform exposes them)."""

    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):
        return max(os.cpu_count() or 1, 1)


def resolve_executor(spec: ExecutorSpec = None, *, jobs: Optional[int] = None) -> Executor:
    """Turn an executor specification into an :class:`Executor` instance.

    ``spec`` may be an executor (returned as-is), ``"serial"``,
    ``"process"``/``"auto"``, an integer job count, ``"distributed"``, a
    ``tcp://host:port`` scheduler bind address, or ``None`` -- in which case
    the ``REPRO_JOBS`` environment variable decides (defaulting to serial).

    Malformed specs raise :class:`ExecutorSpecError` (a :class:`ValueError`)
    naming the offending value -- and its source when it came from
    ``REPRO_JOBS`` -- plus every accepted form, so a typo like
    ``REPRO_JOBS=ten`` fails with an actionable message instead of a bare
    conversion error deep in the stack.
    """

    source = repr(spec)
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return SerialExecutor()
        spec, source = raw, f"{JOBS_ENV_VAR}={raw}"
    if isinstance(spec, str):
        lowered = spec.strip().lower()
        if lowered in ("serial", "1"):
            return SerialExecutor()
        if lowered in ("process", "auto", "0"):
            return ProcessPoolExecutor(jobs or cpu_count())
        if lowered == "distributed" or "://" in lowered:
            return _resolve_distributed(spec.strip(), source, jobs)
        try:
            spec = int(lowered)
        except ValueError:
            raise ExecutorSpecError(
                f"cannot resolve an executor from {source}: expected {SPEC_FORMS}"
            ) from None
    if isinstance(spec, int):
        if spec < 0:
            raise ExecutorSpecError(
                f"cannot resolve an executor from {source}: a job count must "
                f"be >= 0 (0 means one worker per CPU)"
            )
        return SerialExecutor() if spec <= 1 else ProcessPoolExecutor(spec)
    raise TypeError(f"cannot resolve an executor from {spec!r}")


def _resolve_distributed(spec: str, source: str, jobs: Optional[int]) -> Executor:
    """Build a :class:`~repro.distributed.executor.DistributedExecutor`.

    Imported lazily: the distributed runtime depends on this module for the
    :class:`Executor` interface, and plain serial/pool users should not pay
    for the socket machinery.
    """

    from repro.distributed.executor import DistributedExecutor, local_mini_cluster

    if spec.lower() == "distributed":
        return local_mini_cluster(jobs)
    try:
        if spec.lower().startswith("inproc://"):
            # No way to attach external workers to an in-process fleet, so
            # the executor must raise its own -- one per CPU by default.
            return DistributedExecutor(spec, workers=jobs or cpu_count())
        return DistributedExecutor(spec, workers=0)
    except ValueError as error:
        raise ExecutorSpecError(
            f"cannot resolve an executor from {source}: {error} (expected {SPEC_FORMS})"
        ) from None
