"""Runtime hooks: the grid organisations as pluggable lifecycle extensions.

The paper's two light-grid organisations (section 5.2) used to be forked
event loops; here they are :class:`~repro.runtime.lifecycle.RuntimeHook`
implementations over the shared job-lifecycle core:

* :class:`BestEffortHook` -- the *centralized* organisation: a
  :class:`GridServer` holds multi-parametric bags and keeps every idle
  processor busy with preemptible best-effort runs; local jobs reclaim the
  processors (kill + resubmit);
* :class:`LoadExchangeHook` -- the *decentralized* organisation: clusters
  compare relative loads after every submission/completion and migrate
  queued jobs (smallest first) to the least loaded cluster, charging the
  wide-area transfer time;
* :class:`PolicySwitchHook` -- operational scenario support: swap a node's
  scheduling policy at fixed simulation times (e.g. day/night policies).

New platform behaviors belong here (or in user code) as further hooks --
never as new event loops.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.bounds import min_work
from repro.core.job import Job, MoldableJob, ParametricSweep, RigidJob
from repro.core.policies.online import SchedulingPolicy
from repro.core.policies.registry import make_policy
from repro.runtime.lifecycle import ClusterNode, RuntimeHook


# ---------------------------------------------------------------------------
# Centralized organisation: best-effort bag filling
# ---------------------------------------------------------------------------


@dataclass
class _Run:
    """One elementary run of a multi-parametric bag.

    ``name`` is precomputed at construction: it labels every lease, trace
    record and kill/resubmit of the run, and a busy grid re-reads it far
    more often than runs are created.
    """

    bag: ParametricSweep
    index: int
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.bag.name}#{self.index}"


class GridServer:
    """The central server holding the multi-parametric grid jobs."""

    def __init__(self, bags: Sequence[ParametricSweep]) -> None:
        names = [b.name for b in bags]
        if len(set(names)) != len(names):
            raise ValueError("duplicate bag names")
        self.bags = list(bags)
        # Deque: runs leave from the head (next_run) and killed runs come
        # back to the head (resubmit); both are O(1) instead of the O(n)
        # list pop(0)/insert(0, ...).
        self.pending: Deque[_Run] = deque()
        self.completed: Dict[str, int] = {b.name: 0 for b in bags}
        self.launches = 0
        self.kills = 0
        self.bag_completion: Dict[str, Optional[float]] = {b.name: None for b in bags}
        for bag in self.bags:
            for index in range(bag.n_runs):
                self.pending.append(_Run(bag, index))

    def next_run(self) -> Optional[_Run]:
        if not self.pending:
            return None
        return self.pending.popleft()

    def resubmit(self, run: _Run) -> None:
        """A killed run goes back to the head of the queue ("submit it once again")."""

        self.kills += 1
        self.pending.appendleft(run)

    def complete(self, run: _Run, now: float) -> None:
        self.completed[run.bag.name] += 1
        if self.completed[run.bag.name] == run.bag.n_runs:
            self.bag_completion[run.bag.name] = now

    @property
    def remaining_runs(self) -> int:
        return len(self.pending)


class BestEffortHook(RuntimeHook):
    """Fill idle processors with preemptible best-effort runs (section 5.2).

    Local jobs may reclaim the processors through the pool's preemption
    support (enable ``preempt_best_effort`` in the runtime config): the
    killed run is resubmitted to the server and every cluster is refilled.
    """

    def __init__(self, server: GridServer) -> None:
        self.server = server

    def on_run_start(self) -> None:
        runtime = self.runtime
        labels = runtime.trace_labels
        # Kick off best-effort filling at time 0 on every cluster.
        for node in runtime.node_list:
            runtime.sim.schedule(
                0.0,
                lambda node=node: self.fill(node),
                priority=1,
                label=f"fill {node.name}" if labels else "",
            )

    def after_try_start(self, node: ClusterNode) -> None:
        self.fill(node)

    def fill(self, node: ClusterNode) -> None:
        """Give every idle processor of the cluster a best-effort run."""

        runtime = self.runtime
        sim = runtime.sim
        trace = runtime.trace
        labels = runtime.trace_labels
        pool = node.pool
        while pool.free_count(sim.now) > 0:
            run = self.server.next_run()
            if run is None:
                return
            lease_name = f"be:{run.name}"
            state = {"cancelled": False}

            def on_preempt(_procs, run=run, state=state, node=node) -> None:
                # Killed by a local job: resubmit and cancel the completion.
                state["cancelled"] = True
                trace.record(sim.now, "kill", run.name, cluster=node.trace_name)
                self.server.resubmit(run)
                trace.record(sim.now, "resubmit", run.name, cluster=node.trace_name)
                # The resubmitted run may find room on another cluster that
                # currently has no pending event: wake them all up.
                sim.schedule(
                    0.0,
                    lambda: [self.fill(n) for n in runtime.node_list],
                    priority=2,
                    label="refill after kill" if labels else "",
                )

            processors = pool.try_acquire(
                lease_name, 1, now=sim.now, preemptible=True, on_preempt=on_preempt
            )
            if processors is None:
                return
            self.server.launches += 1
            trace.record(sim.now, "start", run.name,
                         cluster=node.trace_name, processors=processors,
                         info="best-effort")
            duration = run.bag.run_time / node.speed

            def complete(run=run, lease_name=lease_name, state=state,
                         node=node, duration=duration) -> None:
                if state["cancelled"]:
                    return
                node.pool.release(lease_name)
                node.work += duration
                trace.record(sim.now, "complete", run.name,
                             cluster=node.trace_name, info="best-effort")
                self.server.complete(run, sim.now)
                self.fill(node)

            sim.schedule(duration, complete,
                         label=f"complete {run.name}" if labels else "")


# ---------------------------------------------------------------------------
# Decentralized organisation: load-threshold work exchange
# ---------------------------------------------------------------------------


class LoadExchangeHook(RuntimeHook):
    """Migrate queued jobs between clusters when the load imbalance exceeds
    a threshold (the decentralized organisation of section 5.2)."""

    def __init__(
        self,
        grid,
        *,
        imbalance_threshold: float = 2.0,
        enabled: bool = True,
        data_volume_per_work_unit: float = 0.1,
    ) -> None:
        self.grid = grid
        self.imbalance_threshold = imbalance_threshold
        self.enabled = enabled
        self.data_volume_per_work_unit = data_volume_per_work_unit
        self.migrations = 0
        self.migrated_jobs: List[str] = []

    def on_submit(self, node: ClusterNode, job: Job) -> None:
        self.maybe_exchange(node)

    def on_job_complete(self, node: ClusterNode) -> None:
        self.maybe_exchange(node)

    def relative_load(self, node: ClusterNode) -> float:
        queued = sum(min_work(j) for j in node.queue)
        return (queued + node.work) / node.cluster.total_compute_rate

    def maybe_exchange(self, node: ClusterNode) -> None:
        if not self.enabled:
            return
        runtime = self.runtime
        queue = node.queue
        if not queue:
            return
        my_load = self.relative_load(node)
        others = [n for n in runtime.node_list if n.name != node.name]
        if not others:
            return
        # Deterministic tie-break: equal loads resolve by cluster name, not
        # by grid declaration order.
        target = min(others, key=lambda other: (self.relative_load(other), other.name))
        target_load = self.relative_load(target)
        if my_load - target_load <= self.imbalance_threshold:
            return
        sim = runtime.sim
        trace = runtime.trace
        labels = runtime.trace_labels
        # Migrate queued jobs (smallest first) while the imbalance persists.
        for job in sorted(queue, key=lambda j: (min_work(j), j.name)):
            my_load = self.relative_load(node)
            target_load = self.relative_load(target)
            if my_load - target_load <= self.imbalance_threshold:
                break
            # A job that cannot run on the target cluster stays put.
            target_procs = target.machine_count
            if isinstance(job, RigidJob) and job.nbproc > target_procs:
                continue
            if isinstance(job, MoldableJob) and job.min_procs > target_procs:
                continue
            queue.remove(job)
            self.migrations += 1
            self.migrated_jobs.append(job.name)
            delay = self.grid.transfer_time(
                node.name, target.name,
                min_work(job) * self.data_volume_per_work_unit,
            )
            trace.record(sim.now, "migrate", job.name, cluster=node.trace_name,
                         info=f"-> {target.name}")

            def arrive(job=job, target=target) -> None:
                target.queue.append(job)
                trace.record(sim.now, "submit", job.name, cluster=target.trace_name,
                             info="migrated")
                runtime.try_start(target)

            sim.schedule(delay, arrive,
                         label=f"migrate {job.name}" if labels else "")


# ---------------------------------------------------------------------------
# Mid-run policy switching
# ---------------------------------------------------------------------------


class PolicySwitchHook(RuntimeHook):
    """Swap the scheduling policy of clusters at fixed simulation times.

    ``switches`` is a sequence of ``(time, cluster_name, policy)`` triples;
    ``cluster_name=None`` applies the switch to every node.  ``policy`` is
    anything :func:`~repro.core.policies.registry.make_policy` accepts.  A
    ``policy-switch`` trace event records each swap, and a scheduling round
    runs immediately so the new policy can start jobs at the switch instant.
    The new policy keeps the node's moldable->rigid allocator unless the
    switch names an explicit policy instance carrying its own.

    Switch events are ordinary simulation events: a switch scheduled past
    the end of the workload keeps the clock running (and the horizon
    growing) until it fires, so place switches within the workload span.
    """

    def __init__(
        self,
        switches: Sequence[Tuple[float, Optional[str], Union[str, SchedulingPolicy]]],
    ) -> None:
        self.switches = list(switches)
        for time, _cluster, policy in self.switches:
            if time < 0:
                raise ValueError("policy switch times must be >= 0")
            if not isinstance(policy, SchedulingPolicy):
                # Eager name validation: a typo should fail at construction,
                # not mid-simulation when the switch event fires.  The real
                # instance is built at fire time with the node's allocator.
                make_policy(policy)

    def on_run_start(self) -> None:
        runtime = self.runtime
        labels = runtime.trace_labels
        for time, cluster_name, policy in self.switches:
            if cluster_name is None:
                targets = list(runtime.node_list)
            elif cluster_name in runtime.nodes:
                targets = [runtime.nodes[cluster_name]]
            else:
                raise ValueError(
                    f"policy switch references unknown cluster {cluster_name!r}; "
                    f"known: {sorted(runtime.nodes)}"
                )
            for node in targets:
                runtime.sim.schedule_at(
                    time,
                    lambda node=node, policy=policy: self._switch(node, policy),
                    label=f"switch {node.name}" if labels else "",
                )

    def _switch(self, node: ClusterNode, policy: Union[str, SchedulingPolicy]) -> None:
        runtime = self.runtime
        # The switch changes the *policy*, not the allocation strategy: keep
        # the node's current moldable->rigid allocator unless an explicit
        # policy instance carries its own.
        if isinstance(policy, SchedulingPolicy):
            node.policy = policy
        else:
            node.policy = make_policy(policy, allocator=node.policy.allocator)
        # An explicit policy instance may have served a previous run; drop
        # any cross-run state (e.g. a PlannedPolicy plan keyed by job names).
        node.policy.reset()
        runtime.trace.record(runtime.sim.now, "policy-switch", node.policy.name,
                             cluster=node.trace_name)
        runtime.try_start(node)
