"""Distributed campaign runner: an asyncio scheduler over pluggable comms.

The single-host sweep engine (``REPRO_JOBS=N`` process pools) tops out at
one machine; this package is the execution layer that outgrows it.  A
central :class:`~repro.distributed.scheduler.Scheduler` -- a single-event-
loop asyncio state machine -- owns the cell queue of one *campaign* (a
sweep routed through the harness) and serves it to any number of
:class:`~repro.distributed.worker.Worker` s, which register, heartbeat,
pull cells and stream outcomes back.  The messages are length-prefixed JSON
frames (:mod:`repro.distributed.protocol`) carried over a pluggable comm
layer (:mod:`repro.distributed.comm`): ``tcp://`` sockets for real fleets
on one host or across a cluster, ``inproc://`` channels for socketless
in-process fleets -- a thousand simulated workers in one process.

Scheduling is pull-based with prefetch leases, plus **work stealing** (idle
workers steal the queued tail of loaded workers' leases) and **speculative
re-execution** (straggler cells are duplicated onto idle workers; the first
result wins and the losers are cancelled).  Both ride on the runtime's
duplicate-result idempotence -- results are keyed by position and every
cell carries its own deterministic seed -- so they change the wall clock,
never the rows.  Fault tolerance is retry-based (dead workers' in-flight
cells are requeued under a bounded budget) and campaigns are resumable
through an append-only JSONL journal
(:class:`~repro.distributed.campaign.CampaignJournal`).

The public entry points:

* :class:`~repro.distributed.executor.DistributedExecutor` plugs the
  runtime into the ordinary ``Executor`` interface, so any sweep, scenario
  or bench case runs distributed unchanged and bit-identically (selected by
  ``REPRO_JOBS=tcp://host:port``, ``REPRO_JOBS=inproc://``,
  ``executor="distributed"``, or explicitly);
* ``python -m repro.distributed`` drives it from the command line
  (``scheduler`` / ``worker`` / ``run`` -- see :mod:`repro.distributed.cli`).
"""

from repro.distributed.campaign import CampaignJournal
from repro.distributed.comm import (
    Backend,
    Comm,
    CommClosedError,
    CommError,
    Listener,
    UnknownSchemeError,
    register_backend,
    registered_schemes,
)
from repro.distributed.executor import (
    DistributedExecutor,
    executor_from_address,
    inproc_fleet,
    local_mini_cluster,
)
from repro.distributed.protocol import (
    ConnectionClosed,
    ProtocolError,
    format_address,
    parse_address,
)
from repro.distributed.scheduler import CampaignStalled, Scheduler, SchedulerStats
from repro.distributed.worker import AsyncWorker, Worker, run_worker

__all__ = [
    "AsyncWorker",
    "Backend",
    "CampaignJournal",
    "CampaignStalled",
    "Comm",
    "CommClosedError",
    "CommError",
    "ConnectionClosed",
    "DistributedExecutor",
    "Listener",
    "ProtocolError",
    "Scheduler",
    "SchedulerStats",
    "UnknownSchemeError",
    "Worker",
    "executor_from_address",
    "format_address",
    "inproc_fleet",
    "local_mini_cluster",
    "parse_address",
    "register_backend",
    "registered_schemes",
    "run_worker",
]
