"""Decentralized light-grid organisation (section 5.2, "Decentralized").

"In this vision, all jobs -- grid and local ones -- are submitted to local
scheduling systems.  These systems then have the possibility to exchange work
in order to balance the load.  The protocol for exchanging work still has to
be defined, but it would have to take care of both fairness and performance
issues at the same time."

Since the paper explicitly leaves the protocol open ("there are several
directions to address this problem: graph coupling [...] an economical
approach [...] consensus-driven algorithms ..."), this module implements a
simple, well-documented *load-threshold* exchange protocol that captures the
idea and lets the benchmarks compare the decentralized organisation against
isolated clusters and against the centralized best-effort scheme:

* every cluster runs its own FCFS queue for the jobs submitted to it;
* when a job is submitted (or a job completes) the cluster compares its
  *relative load* (queued + running work divided by its compute rate) to the
  load of the other clusters;
* if its load exceeds the minimum load by more than ``imbalance_threshold``,
  it migrates queued jobs (smallest first, never running ones) to the least
  loaded cluster; a migration delay -- the wide-area transfer time of the job
  input data -- is charged before the job becomes available on the remote
  cluster;
* migrated jobs keep their owner, so the fairness metrics can verify that
  "making [resources] available to others does not make [their owners] loose
  too much".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.allocation import Schedule
from repro.core.criteria import CriteriaReport
from repro.core.job import Job, MoldableJob, RigidJob
from repro.core.bounds import min_work
from repro.core.policies.base import MoldableAllocator, SchedulerError
from repro.metrics.fairness import FairnessReport, fairness_report
from repro.platform.grid import LightGrid
from repro.simulation.cluster_sim import QUEUE_POLICIES, QueuePolicy
from repro.simulation.engine import Simulator
from repro.simulation.resources import ProcessorPool
from repro.simulation.tracing import Trace


@dataclass
class DecentralizedResult:
    """Outcome of a decentralized grid simulation."""

    schedules: Dict[str, Schedule]
    criteria: Dict[str, CriteriaReport]
    migrations: int
    migrated_jobs: List[str]
    horizon: float
    trace: Trace
    fairness: FairnessReport
    #: Mean flow time (C_j - r_j) over all jobs of the grid.
    mean_flow: float
    #: Maximum flow time over all jobs.
    max_flow: float

    @property
    def makespan(self) -> float:
        return max((s.makespan() for s in self.schedules.values()), default=0.0)


class DecentralizedGridSimulator:
    """Load-threshold work exchange between the clusters of a light grid."""

    def __init__(
        self,
        grid: LightGrid,
        *,
        local_policy: Union[str, QueuePolicy] = "backfill",
        allocator: Optional[MoldableAllocator] = None,
        imbalance_threshold: float = 2.0,
        exchange_enabled: bool = True,
        data_volume_per_work_unit: float = 0.1,
        trace_labels: bool = False,
    ) -> None:
        if imbalance_threshold < 0:
            raise ValueError("imbalance_threshold must be >= 0")
        self.grid = grid
        if isinstance(local_policy, str):
            try:
                policy_cls = QUEUE_POLICIES[local_policy]
            except KeyError:
                raise ValueError(
                    f"unknown queue policy {local_policy!r}; known: {sorted(QUEUE_POLICIES)}"
                ) from None
            self._policy_factory = lambda: policy_cls(allocator)
        else:
            self._policy_factory = lambda: local_policy
        self.imbalance_threshold = imbalance_threshold
        self.exchange_enabled = exchange_enabled
        self.data_volume_per_work_unit = data_volume_per_work_unit
        #: Build per-event label strings (debugging aid; off on the fast path).
        self.trace_labels = trace_labels

    # -- main entry point --------------------------------------------------------
    def run(self, submissions: Mapping[str, Sequence[Job]]) -> DecentralizedResult:
        """Run the simulation; ``submissions`` maps cluster name -> local jobs."""

        unknown = [name for name in submissions if name not in self.grid.cluster_names]
        if unknown:
            raise ValueError(f"submissions reference unknown clusters: {unknown}")

        sim = Simulator(trace_labels=self.trace_labels)
        labels = self.trace_labels
        trace = Trace()
        pools: Dict[str, ProcessorPool] = {}
        queues: Dict[str, List[Job]] = {}
        running_work: Dict[str, float] = {}
        policies: Dict[str, QueuePolicy] = {}
        schedules: Dict[str, Schedule] = {}
        migrations = 0
        migrated_jobs: List[str] = []
        flows: Dict[str, float] = {}
        release_of: Dict[str, float] = {}

        for cluster in self.grid:
            pools[cluster.name] = ProcessorPool(cluster.processor_count)
            queues[cluster.name] = []
            running_work[cluster.name] = 0.0
            policies[cluster.name] = self._policy_factory()
            schedules[cluster.name] = Schedule(cluster.processor_count)

        def relative_load(cluster_name: str) -> float:
            cluster = self.grid.cluster(cluster_name)
            queued = sum(min_work(j) for j in queues[cluster_name])
            return (queued + running_work[cluster_name]) / cluster.total_compute_rate

        def try_start(cluster_name: str) -> None:
            cluster = self.grid.cluster(cluster_name)
            pool = pools[cluster_name]
            queue = queues[cluster_name]
            if not queue:
                return
            free = pool.free_count(sim.now)
            if free == 0:
                return
            decisions = policies[cluster_name].select(
                tuple(queue), free, sim.now, cluster.processor_count
            )
            for job, nbproc in decisions:
                processors = pool.try_acquire(job.name, nbproc, now=sim.now)
                if processors is None:
                    continue
                queue.remove(job)
                speed = cluster.machines[0].speed
                runtime = job.runtime(nbproc) / speed
                running_work[cluster_name] += runtime * nbproc
                schedules[cluster_name].add(job, sim.now, processors, runtime)
                trace.record(sim.now, "start", job.name, cluster=cluster_name,
                             processors=processors)

                def complete(job=job, cluster_name=cluster_name,
                             runtime=runtime, nbproc=nbproc) -> None:
                    pools[cluster_name].release(job.name)
                    running_work[cluster_name] -= runtime * nbproc
                    flows[job.name] = sim.now - release_of[job.name]
                    trace.record(sim.now, "complete", job.name, cluster=cluster_name)
                    try_start(cluster_name)
                    maybe_exchange(cluster_name)

                sim.schedule(runtime, complete,
                             label=f"complete {job.name}" if labels else "")

        def maybe_exchange(cluster_name: str) -> None:
            nonlocal migrations
            if not self.exchange_enabled:
                return
            queue = queues[cluster_name]
            if not queue:
                return
            my_load = relative_load(cluster_name)
            others = [c.name for c in self.grid if c.name != cluster_name]
            if not others:
                return
            target = min(others, key=relative_load)
            target_load = relative_load(target)
            if my_load - target_load <= self.imbalance_threshold:
                return
            # Migrate queued jobs (smallest first) while the imbalance persists.
            for job in sorted(queue, key=lambda j: (min_work(j), j.name)):
                my_load = relative_load(cluster_name)
                target_load = relative_load(target)
                if my_load - target_load <= self.imbalance_threshold:
                    break
                # A job that cannot run on the target cluster stays put.
                target_procs = self.grid.cluster(target).processor_count
                if isinstance(job, RigidJob) and job.nbproc > target_procs:
                    continue
                if isinstance(job, MoldableJob) and job.min_procs > target_procs:
                    continue
                queue.remove(job)
                migrations += 1
                migrated_jobs.append(job.name)
                delay = self.grid.transfer_time(
                    cluster_name, target, min_work(job) * self.data_volume_per_work_unit
                )
                trace.record(sim.now, "migrate", job.name, cluster=cluster_name,
                             info=f"-> {target}")

                def arrive(job=job, target=target) -> None:
                    queues[target].append(job)
                    trace.record(sim.now, "submit", job.name, cluster=target,
                                 info="migrated")
                    try_start(target)

                sim.schedule(delay, arrive,
                             label=f"migrate {job.name}" if labels else "")

        def submit(cluster_name: str, job: Job) -> None:
            release_of[job.name] = sim.now
            trace.record(sim.now, "submit", job.name, cluster=cluster_name)
            queues[cluster_name].append(job)
            try_start(cluster_name)
            maybe_exchange(cluster_name)

        for cluster_name, jobs in submissions.items():
            for job in sorted(jobs, key=lambda j: (j.release_date, j.name)):
                sim.schedule_at(
                    job.release_date,
                    lambda cluster_name=cluster_name, job=job: submit(cluster_name, job),
                    label=f"submit {job.name}" if labels else "",
                )
        sim.run()

        for cluster_name, queue in queues.items():
            if queue:
                raise SchedulerError(
                    f"cluster {cluster_name!r} finished with {len(queue)} jobs queued"
                )

        criteria = {}
        merged: Optional[Schedule] = None
        for cluster in self.grid:
            # Migrated jobs may start before their *local* release date on the
            # remote schedule clock; validation of release dates is therefore
            # done against the recorded submission times, not job.release_date.
            schedules[cluster.name].validate(check_release_dates=False)
            criteria[cluster.name] = CriteriaReport.from_schedule(schedules[cluster.name])

        # Fairness is computed on the union of the per-cluster schedules on a
        # virtual platform of the full grid size.
        union = Schedule(self.grid.processor_count)
        offset = 0
        for cluster in self.grid:
            for entry in schedules[cluster.name]:
                union.add(
                    entry.job,
                    entry.start,
                    [p + offset for p in entry.processors],
                    entry.allocation.runtime,
                )
            offset += cluster.processor_count
        fairness = fairness_report(
            union,
            entitled_shares={
                c.community or c.name: c.processor_count / self.grid.processor_count
                for c in self.grid
            },
        )

        flow_values = list(flows.values())
        mean_flow = sum(flow_values) / len(flow_values) if flow_values else 0.0
        max_flow = max(flow_values) if flow_values else 0.0
        return DecentralizedResult(
            schedules=schedules,
            criteria=criteria,
            migrations=migrations,
            migrated_jobs=migrated_jobs,
            horizon=sim.now,
            trace=trace,
            fairness=fairness,
            mean_flow=mean_flow,
            max_flow=max_flow,
        )
