"""Trace export rides the unified results API: flat rows, files, stores."""

from __future__ import annotations

from repro.simulation.tracing import Trace
from repro.store.api import read_rows, store_trace
from repro.store.columnar import CampaignStore


def sample_trace() -> Trace:
    trace = Trace()
    trace.record(0.0, "submit", "a", cluster="c0")
    trace.record(1.5, "start", "a", cluster="c0", processors=(0, 1, 2))
    trace.record(4.0, "complete", "a", cluster="c0")
    trace.record(2.0, "start", "be", processors=(3,), info="best-effort")
    trace.record(3.0, "kill", "be", info="best-effort")
    return trace


class TestFlatRecords:
    def test_rows_are_scalar_only_with_fixed_columns(self):
        rows = sample_trace().flat_records()
        assert [tuple(row) for row in rows] == [Trace.EXPORT_COLUMNS] * 5
        start = rows[1]
        assert start["processors"] == "0 1 2"  # space-joined, not a tuple
        assert rows[3]["cluster"] == ""        # None folds to the empty string
        assert rows[4]["info"] == "best-effort"

    def test_csv_has_the_fixed_header_even_when_empty(self):
        assert Trace().to_csv() == "time,kind,job,cluster,processors,info\n"
        csv = sample_trace().to_csv()
        lines = csv.splitlines()
        assert lines[0] == "time,kind,job,cluster,processors,info"
        assert lines[1] == "0.000000,submit,a,c0,,"
        assert lines[2] == "1.500000,start,a,c0,0 1 2,"
        assert len(lines) == 6


class TestWrite:
    def test_csv_and_jsonl_round_trip_through_write_rows(self, tmp_path):
        trace = sample_trace()
        for suffix in ("csv", "jsonl"):
            path = trace.write(tmp_path / f"trace.{suffix}")
            rows = read_rows(path)
            assert len(rows) == 5
            assert [row["kind"] for row in rows] == [
                "submit", "start", "complete", "start", "kill",
            ]
            assert rows[1]["processors"] == "0 1 2"


class TestStoreTrace:
    def test_trace_lands_in_a_campaign_store_partition(self, tmp_path):
        trace = sample_trace()
        store = CampaignStore(tmp_path / "store")
        written = store_trace(trace, store, scenario="demo", label="seed-1")
        assert written == 5
        assert "trace.demo" in store.scenarios()
        rows = store.rows(scenario="trace.demo")
        assert [row["kind"] for row in rows] == [
            "submit", "start", "complete", "start", "kill",
        ]

    def test_identical_events_are_not_deduplicated(self, tmp_path):
        trace = Trace()
        for _ in range(3):  # legitimate duplicates (e.g. periodic samples)
            trace.record(1.0, "reserve", "slot", cluster="c0")
        store = CampaignStore(tmp_path / "store")
        assert store_trace(trace, store, scenario="dup") == 3
        assert len(store.rows(scenario="trace.dup")) == 3

    def test_store_accepts_a_bare_directory_path(self, tmp_path):
        written = store_trace(sample_trace(), tmp_path / "bare", scenario="p")
        assert written == 5
        assert len(CampaignStore(tmp_path / "bare").rows(scenario="trace.p")) == 5
