"""On-line simulation of a single cluster driven by a scheduling policy.

This is the event-driven counterpart of the schedule-constructing policies
of :mod:`repro.core.policies`: jobs arrive over time (their release dates),
wait in a queue, and a :class:`~repro.core.policies.online.SchedulingPolicy`
decides at every scheduling point (arrival or completion) which waiting jobs
to start on the free processors.

Since the unified-runtime refactor the simulator is a *configuration* of
:class:`repro.runtime.lifecycle.SchedulingRuntime` -- one strict node, no
hooks -- rather than its own event loop, and the result is the unified
:class:`repro.runtime.record.SimulationRecord` (``SimulationResult`` is a
compat alias).  Any policy registered in
:mod:`repro.core.policies.registry` can drive the cluster by name::

    ClusterSimulator(64, policy="bicriteria").run(jobs)

The queue-policy classes that historically lived here moved to
:mod:`repro.core.policies.online`; deprecated import shims below keep the
old paths working.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.criteria import CriteriaReport
from repro.core.job import Job
from repro.core.policies.base import MoldableAllocator
from repro.core.policies.online import SchedulingPolicy
from repro.core.policies.registry import make_policy
from repro.metrics.ratios import schedule_ratios
from repro.platform.cluster import Cluster
from repro.runtime.lifecycle import ClusterNode, RuntimeConfig, SchedulingRuntime
from repro.runtime.record import MODE_CLUSTER, SimulationRecord

#: Unified result model; the historical name is kept as an alias.
SimulationResult = SimulationRecord

_CLUSTER_CONFIG = RuntimeConfig(
    strict_select=True,
    complete_with_processors=True,
    starved_message=(
        "simulation finished with {count} jobs still queued "
        "(policy {policy!r} starved them)"
    ),
)


class ClusterSimulator:
    """Event-driven on-line simulation of one cluster."""

    def __init__(
        self,
        platform: Union[Cluster, int],
        *,
        policy: Union[str, SchedulingPolicy] = "fifo",
        allocator: Optional[MoldableAllocator] = None,
        policy_switches: Sequence[Tuple[float, Union[str, SchedulingPolicy]]] = (),
        trace_labels: bool = False,
    ) -> None:
        if isinstance(platform, Cluster):
            self.machine_count = platform.processor_count
            self.cluster_name: Optional[str] = platform.name
        else:
            if platform < 1:
                raise ValueError("machine_count must be >= 1")
            self.machine_count = int(platform)
            self.cluster_name = None
        self.policy = make_policy(policy, allocator=allocator)
        #: Mid-run policy switches: (simulation time, policy name or instance)
        #: pairs, applied by a :class:`~repro.runtime.hooks.PolicySwitchHook`.
        self.policy_switches = [(float(t), p) for t, p in policy_switches]
        for _time, switch_policy in self.policy_switches:
            if not isinstance(switch_policy, SchedulingPolicy):
                make_policy(switch_policy)  # eager name validation
        #: Build per-event label strings (debugging aid; off on the fast path).
        self.trace_labels = trace_labels

    # -- main entry point -------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> SimulationRecord:
        jobs = list(jobs)
        node = ClusterNode(
            self.cluster_name or "cluster",
            self.machine_count,
            policy=self.policy,
            trace_name=self.cluster_name,
        )
        hooks = []
        if self.policy_switches:
            from repro.runtime.hooks import PolicySwitchHook

            hooks.append(
                PolicySwitchHook([(t, None, p) for t, p in self.policy_switches])
            )
        runtime = SchedulingRuntime(
            [node], hooks=hooks, config=_CLUSTER_CONFIG, trace_labels=self.trace_labels
        )
        horizon = runtime.run({node.name: jobs})

        node.schedule.validate()
        criteria = CriteriaReport.from_schedule(node.schedule)
        ratios = schedule_ratios(node.schedule, jobs, machine_count=self.machine_count)
        return SimulationRecord(
            mode=MODE_CLUSTER,
            machine_count=self.machine_count,
            schedules={node.name: node.schedule},
            cluster_criteria={node.name: criteria},
            trace=runtime.trace,
            horizon=horizon,
            policies={node.name: node.policy.name},
            ratios=ratios,
        )


def compare_policies(
    jobs: Sequence[Job],
    machine_count: int,
    *,
    policies: Sequence[str] = ("fifo", "backfill", "smallest-first"),
) -> Dict[str, SimulationRecord]:
    """Run the same workload under several queue policies (policy-comparison helper)."""

    results: Dict[str, SimulationRecord] = {}
    for name in policies:
        simulator = ClusterSimulator(machine_count, policy=name)
        results[name] = simulator.run(jobs)
    return results


# ---------------------------------------------------------------------------
# Deprecated import shims (the policy classes moved to core.policies.online)
# ---------------------------------------------------------------------------

_MOVED = {
    "QueuePolicy": "SchedulingPolicy",
    "FifoPolicy": "FifoPolicy",
    "BackfillPolicy": "BackfillPolicy",
    "SmallestFirstPolicy": "SmallestFirstPolicy",
}


def __getattr__(name: str):
    if name in _MOVED:
        import repro.core.policies.online as online

        warnings.warn(
            f"repro.simulation.cluster_sim.{name} moved to "
            f"repro.core.policies.online.{_MOVED[name]}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(online, _MOVED[name])
    if name == "QUEUE_POLICIES":
        from repro.core.policies.online import (
            BackfillPolicy,
            FifoPolicy,
            SmallestFirstPolicy,
        )

        warnings.warn(
            "repro.simulation.cluster_sim.QUEUE_POLICIES is deprecated; use "
            "repro.core.policies.registry.make_policy / policy_names instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            "fifo": FifoPolicy,
            "backfill": BackfillPolicy,
            "smallest-first": SmallestFirstPolicy,
        }
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
