"""Named, individually tested analytics queries over a campaign store.

Each query exists twice, by design:

* as **SQL** over the DuckDB view ``rows`` (one record per landed cell,
  promoted scalar columns; see :mod:`repro.store.analytics`) -- the fast
  path for millions-of-cells stores, and
* as a **pure-python** twin operating on :meth:`CampaignStore.records`
  output -- the dependency-free fallback, and the oracle the SQL is tested
  against (which in turn matches the
  :class:`~repro.metrics.aggregate.StreamingAggregator` numbers).

:func:`run_query` picks the engine (``auto`` prefers SQL when duckdb is
importable) and always returns a list of plain dict rows, so CLI export and
tests treat both engines identically.

Queries never interpolate raw user input: column names are validated
against an identifier grammar before quoting, values go through a literal
escaper.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.aggregate import summarize
from repro.store.columnar import CampaignStore

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


class QueryError(ValueError):
    """Unknown query, missing parameter or invalid identifier."""


def quote_ident(name: str) -> str:
    """Validate and double-quote a column identifier for SQL interpolation."""

    if not _IDENT.match(name or ""):
        raise QueryError(f"invalid column identifier {name!r}")
    return f'"{name}"'


def sql_literal(value: Any) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def _metric_expr(metric: str) -> str:
    """A numeric view of a possibly VARCHAR-unioned column."""

    return f"try_cast({quote_ident(metric)} AS DOUBLE)"


def _where(filters: Mapping[str, Any], extra: Sequence[str] = ()) -> str:
    clauses = [f"{quote_ident(k)} = {sql_literal(v)}" for k, v in sorted(filters.items())
               if v is not None]
    clauses.extend(extra)
    return (" WHERE " + " AND ".join(clauses)) if clauses else ""


def _scoped(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {k: params.get(k) for k in ("campaign", "scenario") if params.get(k) is not None}


def _match(record: Mapping[str, Any], filters: Mapping[str, Any]) -> bool:
    return all(record.get(k) == v for k, v in filters.items())


def _numeric(value: Any) -> Optional[float]:
    """The float() view a record column shares with the SQL ``try_cast``."""

    if value is None or isinstance(value, bool):
        return 1.0 if value is True else (0.0 if value is False else None)
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


@dataclass(frozen=True)
class Query:
    """One named analytics query: SQL text + pure-python twin."""

    name: str
    description: str
    required: Tuple[str, ...]
    optional: Tuple[str, ...]
    sql_builder: Callable[[Dict[str, Any]], str]
    py_runner: Callable[[List[Dict[str, Any]], Dict[str, Any]], List[Dict[str, Any]]]
    #: SQL results carry a ``row_json`` column to decode into the output rows.
    decodes_rows: bool = False

    def check_params(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        missing = [name for name in self.required if params.get(name) in (None, "")]
        if missing:
            raise QueryError(
                f"query {self.name!r} needs parameter(s) {missing} "
                f"(pass --param name=value)"
            )
        unknown = sorted(set(params) - set(self.required) - set(self.optional))
        if unknown:
            raise QueryError(
                f"query {self.name!r} does not take parameter(s) {unknown}; "
                f"accepted: {sorted(self.required + self.optional)}"
            )
        return dict(params)

    def sql(self, **params: Any) -> str:
        return self.sql_builder(self.check_params(params))

    def run_py(self, records: List[Dict[str, Any]], **params: Any) -> List[Dict[str, Any]]:
        return self.py_runner(records, self.check_params(params))


# ---------------------------------------------------------------------------
# rows: the exact result rows (bit-identical re-export channel)
# ---------------------------------------------------------------------------


def _rows_sql(params: Dict[str, Any]) -> str:
    return (
        "SELECT campaign, scenario, row_index, row_json FROM rows"
        + _where(_scoped(params))
        + " ORDER BY campaign, scenario, row_index"
    )


def _rows_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    scoped = _scoped(params)
    return [
        json.loads(record["row_json"])
        for record in records
        if _match(record, scoped)
    ]


# ---------------------------------------------------------------------------
# metric-summary: StreamingAggregator-equivalent per-scenario statistics
# ---------------------------------------------------------------------------


def _metric_summary_sql(params: Dict[str, Any]) -> str:
    m = _metric_expr(params["metric"])
    return (
        f"SELECT campaign, scenario, {sql_literal(params['metric'])} AS metric, "
        f"count({m}) AS count, avg({m}) AS mean, "
        f"coalesce(stddev_samp({m}), 0.0) AS std, "
        f"min({m}) AS min, median({m}) AS median, "
        f"quantile_cont({m}, 0.9) AS p90, max({m}) AS max, "
        f"CASE WHEN count({m}) > 1 THEN 1.96 * coalesce(stddev_samp({m}), 0.0) "
        f"/ sqrt(count({m})) ELSE 0.0 END AS ci95 "
        "FROM rows"
        + _where(_scoped(params), (f"{m} IS NOT NULL",))
        + " GROUP BY campaign, scenario ORDER BY campaign, scenario"
    )


def _metric_summary_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    metric = params["metric"]
    scoped = _scoped(params)
    groups: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        if not _match(record, scoped):
            continue
        value = _numeric(json.loads(record["row_json"]).get(metric))
        if value is None:
            continue
        groups.setdefault((record["campaign"], record["scenario"]), []).append(value)
    out = []
    for (campaign, scenario), values in sorted(groups.items()):
        summary = summarize(metric, values).as_dict()
        out.append({"campaign": campaign, "scenario": scenario, **summary})
    return out


# ---------------------------------------------------------------------------
# policy-compare: X vs Y across every scenario and seed
# ---------------------------------------------------------------------------


def _policy_compare_sql(params: Dict[str, Any]) -> str:
    m = _metric_expr(params["metric"])
    axis = quote_ident(params.get("axis") or "policy_name")
    return (
        f"SELECT campaign, scenario, seed, {axis} AS axis_value, "
        f"count({m}) AS count, avg({m}) AS mean "
        "FROM rows"
        + _where(_scoped(params), (f"{m} IS NOT NULL", f"{axis} IS NOT NULL"))
        + f" GROUP BY campaign, scenario, seed, {axis}"
        " ORDER BY campaign, scenario, seed, axis_value"
    )


def _policy_compare_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    metric = params["metric"]
    axis = params.get("axis") or "policy_name"
    scoped = _scoped(params)
    groups: Dict[Tuple[str, str, Any, Any], List[float]] = {}
    for record in records:
        if not _match(record, scoped):
            continue
        row = json.loads(record["row_json"])
        value = _numeric(row.get(metric))
        axis_value = row.get(axis)
        if value is None or axis_value is None:
            continue
        slot = (record["campaign"], record["scenario"], record.get("seed"), axis_value)
        groups.setdefault(slot, []).append(value)
    out = []
    for (campaign, scenario, seed, axis_value), values in sorted(
        groups.items(), key=lambda item: (item[0][0], item[0][1], item[0][2], str(item[0][3]))
    ):
        out.append({
            "campaign": campaign, "scenario": scenario, "seed": seed,
            "axis_value": axis_value, "count": len(values),
            "mean": sum(values) / len(values),
        })
    return out


# ---------------------------------------------------------------------------
# compare: the same cells across two campaigns, value against value
# ---------------------------------------------------------------------------


def _compare_sql(params: Dict[str, Any]) -> str:
    m_a = f"try_cast(a.{quote_ident(params['metric'])} AS DOUBLE)"
    m_b = f"try_cast(b.{quote_ident(params['metric'])} AS DOUBLE)"
    scenario = ""
    if params.get("scenario"):
        scenario = f" AND a.scenario = {sql_literal(params['scenario'])}"
    return (
        f"SELECT a.scenario AS scenario, a.row_index AS row_index, a.seed AS seed, "
        f"{m_a} AS a_value, {m_b} AS b_value, "
        f"({m_a} = {m_b}) AS equal, ({m_b} - {m_a}) AS diff "
        "FROM rows a JOIN rows b ON a.scenario = b.scenario AND a.key = b.key "
        f"WHERE a.campaign = {sql_literal(params['campaign_a'])} "
        f"AND b.campaign = {sql_literal(params['campaign_b'])}"
        + scenario
        + " ORDER BY scenario, row_index"
    )


def _compare_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    metric = params["metric"]
    scenario = params.get("scenario")
    b_side = {
        (r["scenario"], r["key"]): r
        for r in records
        if r["campaign"] == params["campaign_b"]
    }
    out = []
    for record in records:
        if record["campaign"] != params["campaign_a"]:
            continue
        if scenario is not None and record["scenario"] != scenario:
            continue
        other = b_side.get((record["scenario"], record["key"]))
        if other is None:
            continue
        a_value = _numeric(json.loads(record["row_json"]).get(metric))
        b_value = _numeric(json.loads(other["row_json"]).get(metric))
        out.append({
            "scenario": record["scenario"],
            "row_index": record["row_index"],
            "seed": record.get("seed"),
            "a_value": a_value,
            "b_value": b_value,
            "equal": (a_value == b_value) if (a_value is not None and b_value is not None) else None,
            "diff": (b_value - a_value) if (a_value is not None and b_value is not None) else None,
        })
    out.sort(key=lambda r: (r["scenario"], r["row_index"]))
    return out


# ---------------------------------------------------------------------------
# cell-timing: per-cell wall-clock percentiles
# ---------------------------------------------------------------------------


def _cell_timing_sql(params: Dict[str, Any]) -> str:
    e = "try_cast(elapsed_seconds AS DOUBLE)"
    return (
        f"SELECT campaign, scenario, count(*) AS cells, sum({e}) AS total_seconds, "
        f"avg({e}) AS mean_seconds, quantile_cont({e}, 0.5) AS p50_seconds, "
        f"quantile_cont({e}, 0.9) AS p90_seconds, max({e}) AS max_seconds, "
        "sum(CASE WHEN replayed THEN 1 ELSE 0 END) AS replayed "
        "FROM rows"
        + _where(_scoped(params))
        + " GROUP BY campaign, scenario ORDER BY campaign, scenario"
    )


def _cell_timing_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    scoped = _scoped(params)
    groups: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for record in records:
        if _match(record, scoped):
            groups.setdefault((record["campaign"], record["scenario"]), []).append(record)
    out = []
    for (campaign, scenario), members in sorted(groups.items()):
        elapsed = [float(r.get("elapsed_seconds") or 0.0) for r in members]
        summary = summarize("elapsed_seconds", elapsed)
        out.append({
            "campaign": campaign, "scenario": scenario, "cells": len(members),
            "total_seconds": sum(elapsed), "mean_seconds": summary.mean,
            "p50_seconds": summary.median, "p90_seconds": summary.p90,
            "max_seconds": summary.maximum,
            "replayed": sum(1 for r in members if r.get("replayed")),
        })
    return out


# ---------------------------------------------------------------------------
# cache-accounting: replayed vs computed cells, dedup coverage
# ---------------------------------------------------------------------------


def _cache_accounting_sql(params: Dict[str, Any]) -> str:
    return (
        "SELECT campaign, scenario, fingerprint, count(*) AS rows, "
        "sum(CASE WHEN replayed THEN 1 ELSE 0 END) AS replayed, "
        "sum(CASE WHEN replayed THEN 0 ELSE 1 END) AS computed, "
        "count(DISTINCT key) AS distinct_keys "
        "FROM rows"
        + _where(_scoped(params))
        + " GROUP BY campaign, scenario, fingerprint "
        "ORDER BY campaign, scenario, fingerprint"
    )


def _cache_accounting_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    scoped = _scoped(params)
    groups: Dict[Tuple[str, str, str], List[Dict[str, Any]]] = {}
    for record in records:
        if _match(record, scoped):
            slot = (record["campaign"], record["scenario"], record.get("fingerprint") or "")
            groups.setdefault(slot, []).append(record)
    out = []
    for (campaign, scenario, fingerprint), members in sorted(groups.items()):
        replayed = sum(1 for r in members if r.get("replayed"))
        out.append({
            "campaign": campaign, "scenario": scenario, "fingerprint": fingerprint,
            "rows": len(members), "replayed": replayed,
            "computed": len(members) - replayed,
            "distinct_keys": len({r["key"] for r in members}),
        })
    return out


# ---------------------------------------------------------------------------
# telemetry: span-summary / worker-occupancy / phase-attribution over
# flight-recorder rows (repro.telemetry.TelemetryRecorder).  Span fields are
# read through row_json so the queries work whatever mix of partitions (and
# promoted columns) shares the store with the telemetry ones.
# ---------------------------------------------------------------------------

#: SQL predicate selecting span events out of recorded telemetry rows.
_SPAN_KIND = "json_extract_string(row_json, '$.kind') = 'span'"
#: SQL views of the span fields (DOUBLE seconds; VARCHAR name/worker).
_SPAN_SECONDS = "try_cast(json_extract(row_json, '$.seconds') AS DOUBLE)"
_SPAN_NAME = "json_extract_string(row_json, '$.name')"
_SPAN_WORKER = "json_extract_string(row_json, '$.worker')"


def _span_body(record: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The decoded payload of a span row, or None for anything else."""

    try:
        body = json.loads(record["row_json"])
    except (KeyError, TypeError, ValueError):
        return None
    if not isinstance(body, dict) or body.get("kind") != "span":
        return None
    if _numeric(body.get("seconds")) is None:
        return None
    return body


def _span_summary_sql(params: Dict[str, Any]) -> str:
    s = _SPAN_SECONDS
    return (
        f"SELECT campaign, scenario, {_SPAN_NAME} AS name, count(*) AS spans, "
        f"sum({s}) AS total_seconds, avg({s}) AS mean_seconds, "
        f"min({s}) AS min_seconds, max({s}) AS max_seconds "
        "FROM rows"
        + _where(_scoped(params), extra=(_SPAN_KIND, f"{s} IS NOT NULL"))
        + " GROUP BY campaign, scenario, name ORDER BY campaign, scenario, name"
    )


def _span_summary_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    scoped = _scoped(params)
    groups: Dict[Tuple[str, str, str], List[float]] = {}
    for record in records:
        if not _match(record, scoped):
            continue
        body = _span_body(record)
        if body is None:
            continue
        slot = (record["campaign"], record["scenario"], str(body.get("name")))
        groups.setdefault(slot, []).append(float(body["seconds"]))
    out = []
    for (campaign, scenario, name), seconds in sorted(groups.items()):
        out.append({
            "campaign": campaign, "scenario": scenario, "name": name,
            "spans": len(seconds), "total_seconds": sum(seconds),
            "mean_seconds": sum(seconds) / len(seconds),
            "min_seconds": min(seconds), "max_seconds": max(seconds),
        })
    return out


def _worker_occupancy_sql(params: Dict[str, Any]) -> str:
    s, name = _SPAN_SECONDS, _SPAN_NAME
    inner = (
        f"SELECT campaign, {_SPAN_WORKER} AS worker, "
        f"sum(CASE WHEN {name} = 'cell.execute' THEN {s} ELSE 0 END) AS busy_seconds, "
        f"sum(CASE WHEN {name} = 'worker.idle' THEN {s} ELSE 0 END) AS idle_seconds, "
        f"sum(CASE WHEN {name} IN ('cell.deserialize', 'cell.serialize') "
        f"THEN {s} ELSE 0 END) AS overhead_seconds, "
        f"sum(CASE WHEN {name} = 'cell.execute' THEN 1 ELSE 0 END) AS cells "
        "FROM rows"
        + _where(
            _scoped(params),
            extra=(_SPAN_KIND, f"{s} IS NOT NULL", f"{_SPAN_WORKER} IS NOT NULL"),
        )
        + " GROUP BY campaign, worker"
    )
    return (
        "SELECT campaign, worker, busy_seconds, idle_seconds, overhead_seconds, "
        "cells, CASE WHEN busy_seconds + idle_seconds + overhead_seconds > 0 "
        "THEN busy_seconds / (busy_seconds + idle_seconds + overhead_seconds) "
        "ELSE 0.0 END AS occupancy "
        f"FROM ({inner}) ORDER BY campaign, worker"
    )


def _worker_occupancy_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    scoped = _scoped(params)
    groups: Dict[Tuple[str, str], Dict[str, float]] = {}
    for record in records:
        if not _match(record, scoped):
            continue
        body = _span_body(record)
        if body is None or body.get("worker") is None:
            continue
        slot = (record["campaign"], str(body["worker"]))
        sums = groups.setdefault(
            slot, {"busy": 0.0, "idle": 0.0, "overhead": 0.0, "cells": 0}
        )
        name, seconds = body.get("name"), float(body["seconds"])
        if name == "cell.execute":
            sums["busy"] += seconds
            sums["cells"] += 1
        elif name == "worker.idle":
            sums["idle"] += seconds
        elif name in ("cell.deserialize", "cell.serialize"):
            sums["overhead"] += seconds
    out = []
    for (campaign, worker), sums in sorted(groups.items()):
        total = sums["busy"] + sums["idle"] + sums["overhead"]
        out.append({
            "campaign": campaign, "worker": worker,
            "busy_seconds": sums["busy"], "idle_seconds": sums["idle"],
            "overhead_seconds": sums["overhead"], "cells": int(sums["cells"]),
            "occupancy": sums["busy"] / total if total > 0 else 0.0,
        })
    return out


def _phase_attribution_sql(params: Dict[str, Any]) -> str:
    s = _SPAN_SECONDS
    return (
        f"SELECT campaign, {_SPAN_NAME} AS phase, count(*) AS spans, "
        f"sum({s}) AS total_seconds, avg({s}) AS mean_seconds, "
        f"sum({s}) / sum(sum({s})) OVER (PARTITION BY campaign) AS share "
        "FROM rows"
        + _where(_scoped(params), extra=(_SPAN_KIND, f"{s} IS NOT NULL"))
        + " GROUP BY campaign, phase ORDER BY campaign, phase"
    )


def _phase_attribution_py(records: List[Dict[str, Any]], params: Dict[str, Any]) -> List[Dict[str, Any]]:
    scoped = _scoped(params)
    groups: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        if not _match(record, scoped):
            continue
        body = _span_body(record)
        if body is None:
            continue
        slot = (record["campaign"], str(body.get("name")))
        groups.setdefault(slot, []).append(float(body["seconds"]))
    campaign_totals: Dict[str, float] = {}
    for (campaign, _phase), seconds in groups.items():
        campaign_totals[campaign] = campaign_totals.get(campaign, 0.0) + sum(seconds)
    out = []
    for (campaign, phase), seconds in sorted(groups.items()):
        total = sum(seconds)
        campaign_total = campaign_totals[campaign]
        out.append({
            "campaign": campaign, "phase": phase, "spans": len(seconds),
            "total_seconds": total, "mean_seconds": total / len(seconds),
            "share": total / campaign_total if campaign_total > 0 else 0.0,
        })
    return out


QUERIES: Dict[str, Query] = {
    query.name: query
    for query in (
        Query(
            name="rows",
            description="the exact result rows, in append order (re-export channel)",
            required=(), optional=("campaign", "scenario"),
            sql_builder=_rows_sql, py_runner=_rows_py, decodes_rows=True,
        ),
        Query(
            name="metric-summary",
            description="per-campaign/scenario summary statistics of one metric "
                        "(matches StreamingAggregator)",
            required=("metric",), optional=("campaign", "scenario"),
            sql_builder=_metric_summary_sql, py_runner=_metric_summary_py,
        ),
        Query(
            name="policy-compare",
            description="mean metric per (campaign, scenario, seed, axis value): "
                        "policy X vs Y across every scenario and seed",
            required=("metric",), optional=("axis", "campaign", "scenario"),
            sql_builder=_policy_compare_sql, py_runner=_policy_compare_py,
        ),
        Query(
            name="compare",
            description="join the same cells across two campaigns and diff one metric",
            required=("metric", "campaign_a", "campaign_b"), optional=("scenario",),
            sql_builder=_compare_sql, py_runner=_compare_py,
        ),
        Query(
            name="cell-timing",
            description="per-cell wall-clock percentiles per campaign/scenario",
            required=(), optional=("campaign", "scenario"),
            sql_builder=_cell_timing_sql, py_runner=_cell_timing_py,
        ),
        Query(
            name="cache-accounting",
            description="replayed vs computed cells and dedup coverage per partition",
            required=(), optional=("campaign", "scenario"),
            sql_builder=_cache_accounting_sql, py_runner=_cache_accounting_py,
        ),
        Query(
            name="span-summary",
            description="per-span-name timing statistics over recorded telemetry "
                        "(flight-recorder partitions)",
            required=(), optional=("campaign", "scenario"),
            sql_builder=_span_summary_sql, py_runner=_span_summary_py,
        ),
        Query(
            name="worker-occupancy",
            description="busy vs idle vs serialization seconds per worker, from "
                        "forwarded worker spans",
            required=(), optional=("campaign", "scenario"),
            sql_builder=_worker_occupancy_sql, py_runner=_worker_occupancy_py,
        ),
        Query(
            name="phase-attribution",
            description="where the milliseconds go: total/mean seconds and share "
                        "per span name (phase) per campaign",
            required=(), optional=("campaign", "scenario"),
            sql_builder=_phase_attribution_sql, py_runner=_phase_attribution_py,
        ),
    )
}


def get_query(name: str) -> Query:
    query = QUERIES.get(name)
    if query is None:
        raise QueryError(f"unknown query {name!r}; known: {sorted(QUERIES)}")
    return query


def run_query(
    store: CampaignStore,
    name: str,
    params: Optional[Mapping[str, Any]] = None,
    *,
    engine: str = "auto",
) -> List[Dict[str, Any]]:
    """Run a named query and return plain dict rows.

    ``engine`` is ``"sql"`` (DuckDB; raises
    :class:`~repro.store.api.StoreUnavailableError` when absent), ``"py"``
    (pure python) or ``"auto"`` (SQL when duckdb is importable, else python).
    Both engines return the same rows.
    """

    from repro.store.analytics import duckdb_available, run_sql_query

    query = get_query(name)
    params = dict(params or {})
    if engine not in ("auto", "sql", "py"):
        raise QueryError(f"unknown engine {engine!r}; expected auto, sql or py")
    if engine == "sql" or (engine == "auto" and duckdb_available()):
        results = run_sql_query(store, query.sql(**params))
        if query.decodes_rows:
            return [json.loads(result["row_json"]) for result in results]
        return results
    return query.run_py(store.records(), **params)
