"""Scheduler fault-path tests driven through raw protocol sockets.

A *silent* fake worker -- one that registers, takes a cell and then stops
heartbeating without closing its socket -- is indistinguishable from a hung
host; only the heartbeat timeout can reclaim its cell.  These tests pin the
eviction, requeue and retry-budget bookkeeping at the scheduler level,
complementing the end-to-end SIGKILL test (where the kernel closes the
socket and the scheduler notices immediately).
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.distributed import DistributedExecutor, Scheduler, protocol
from repro.distributed.scheduler import WORKER_LOST, CampaignStalled
from repro.experiments.grid import CellFunction, expand_grid


def plain_cell(seed, x):
    return {"y": x * 10 + seed % 10}


class FakeWorker:
    """A hand-driven protocol client (no heartbeat thread, no execution)."""

    def __init__(self, address, worker_id):
        host, port = protocol.parse_address(address)
        self.sock = socket.create_connection((host, port), timeout=5.0)
        self.worker_id = worker_id
        protocol.send_message(self.sock, {"op": "hello", "worker": worker_id})
        assert protocol.recv_message(self.sock)["op"] == "welcome"

    def take_cell(self, timeout=10.0):
        """Request until a task arrives; returns the task message."""

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            protocol.send_message(self.sock, {"op": "request"})
            reply = protocol.recv_message(self.sock)
            if reply["op"] == "task":
                return reply
            time.sleep(0.02)
        raise AssertionError("fake worker never received a task")

    def finish(self, task):
        cell = protocol.decode_payload(task["cell"])
        outcome = CellFunction(plain_cell)(cell)
        protocol.send_message(self.sock, {
            "op": "result",
            "worker": self.worker_id,
            "campaign": task["campaign"],
            "index": task["index"],
            "outcome": protocol.encode_payload(outcome),
        })

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def collect_campaign(scheduler, cells, results, errors):
    try:
        results.extend(scheduler.run_campaign(CellFunction(plain_cell), cells))
    except Exception as error:  # surfaced to the test thread
        errors.append(error)


class TestHeartbeatEviction:
    def test_silent_worker_is_evicted_and_its_cell_requeued(self):
        cells = expand_grid({"x": list(range(8))}, repetitions=1)
        scheduler = Scheduler(
            heartbeat_interval=0.1, heartbeat_timeout=0.6, max_retries=3
        ).start()
        results, errors = [], []
        consumer = threading.Thread(
            target=collect_campaign, args=(scheduler, cells, results, errors)
        )
        consumer.start()
        silent = None
        honest = None
        try:
            # The silent worker grabs a cell first, then goes quiet.
            silent = FakeWorker(scheduler.address, "silent")
            task = silent.take_cell()
            held = protocol.decode_payload(task["cell"])

            # An honest worker drains everything else, then idles until the
            # eviction releases the held cell.
            honest = FakeWorker(scheduler.address, "honest")
            done = 0
            while done < len(cells) - 1:
                honest.finish(honest.take_cell())
                done += 1
            retried = honest.take_cell(timeout=10.0)
            assert protocol.decode_payload(retried["cell"]) == held
            honest.finish(retried)

            consumer.join(timeout=10.0)
            assert not consumer.is_alive() and not errors
            assert [outcome.metrics for outcome in results] == [
                CellFunction(plain_cell)(cell).metrics for cell in cells
            ]
            assert scheduler.stats.evictions == 1
            assert scheduler.stats.retries == 1
            # The evicted socket was closed by the scheduler (EOF or reset).
            silent.sock.settimeout(2.0)
            try:
                assert silent.sock.recv(1) == b""
            except ConnectionError:
                pass
        finally:
            for worker in (silent, honest):
                if worker is not None:
                    worker.close()
            scheduler.close()
            consumer.join(timeout=5.0)

    def test_retry_budget_exhaustion_yields_worker_lost_outcome(self):
        cells = expand_grid({}, repetitions=1)  # a single cell
        scheduler = Scheduler(
            heartbeat_interval=0.1, heartbeat_timeout=5.0, max_retries=1
        ).start()
        results, errors = [], []
        consumer = threading.Thread(
            target=collect_campaign, args=(scheduler, cells, results, errors)
        )
        consumer.start()
        try:
            for attempt in range(2):  # initial assignment + one retry
                crashy = FakeWorker(scheduler.address, f"crashy-{attempt}")
                crashy.take_cell()
                crashy.close()  # die mid-cell: connection drop, no result
            consumer.join(timeout=10.0)
            assert not consumer.is_alive() and not errors
            (outcome,) = results
            assert outcome.failed
            assert outcome.error_type == WORKER_LOST
            assert "retry budget" in outcome.error
            assert scheduler.stats.worker_lost_failures == 1
            assert scheduler.stats.retries == 1
        finally:
            scheduler.close()
            consumer.join(timeout=5.0)


class TestDuplicateAndLateResults:
    def test_duplicate_result_for_a_done_cell_is_ignored(self):
        cells = expand_grid({"x": [1]}, repetitions=1)
        scheduler = Scheduler(heartbeat_interval=0.1, heartbeat_timeout=5.0).start()
        results, errors = [], []
        consumer = threading.Thread(
            target=collect_campaign, args=(scheduler, cells, results, errors)
        )
        consumer.start()
        worker = None
        try:
            worker = FakeWorker(scheduler.address, "dup")
            task = worker.take_cell()
            worker.finish(task)
            worker.finish(task)  # replayed frame: must not corrupt anything
            consumer.join(timeout=10.0)
            assert not consumer.is_alive() and not errors
            assert len(results) == 1
            assert scheduler.stats.results == 1
            # The duplicate frame travels concurrently with the campaign
            # ending; wait for the connection thread to swallow it.
            deadline = time.monotonic() + 5.0
            while scheduler.stats.duplicates < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert scheduler.stats.duplicates >= 1
        finally:
            if worker is not None:
                worker.close()
            scheduler.close()
            consumer.join(timeout=5.0)


class TestStallGuard:
    def test_campaign_with_no_workers_raises_campaign_stalled(self):
        executor = DistributedExecutor(
            workers=0, stall_timeout=0.5, heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
        )
        cells = expand_grid({"x": [1, 2]}, repetitions=1)
        with pytest.raises(CampaignStalled):
            list(executor.map(CellFunction(plain_cell), cells))

    def test_concurrent_campaigns_on_one_scheduler_are_rejected(self):
        scheduler = Scheduler(heartbeat_interval=0.1, heartbeat_timeout=5.0).start()
        cells = expand_grid({"x": [1]}, repetitions=1)
        results, errors = [], []
        consumer = threading.Thread(
            target=collect_campaign, args=(scheduler, cells, results, errors)
        )
        consumer.start()
        worker = None
        try:
            time.sleep(0.2)  # let the first campaign register itself
            with pytest.raises(RuntimeError):
                next(iter(scheduler.run_campaign(CellFunction(plain_cell), cells)))
            worker = FakeWorker(scheduler.address, "finisher")
            worker.finish(worker.take_cell())
            consumer.join(timeout=10.0)
            assert not consumer.is_alive() and not errors and len(results) == 1
        finally:
            if worker is not None:
                worker.close()
            scheduler.close()
            consumer.join(timeout=5.0)


class TestWorkerReconnectPromptness:
    def test_connection_closed_mid_request_does_not_wedge_the_worker(self):
        """A scheduler vanishing between campaigns must not cost reply_timeout.

        Regression: the worker sends ``request`` and the scheduler closes the
        connection before replying (exactly what happens when consecutive
        scenarios tear one scheduler down and bind the next).  The reader's
        death has to wake the blocked pull immediately -- a worker that sits
        out the full reply timeout on the dead comm eats into ``max_idle``
        and self-reaps instead of serving the next campaign.
        """

        import asyncio

        from repro.distributed.comm import core as comm_core
        from repro.distributed.worker import AsyncWorker

        async def scenario():
            slammed = asyncio.Event()

            async def slam_after_request(comm):
                message = await comm.recv()
                if message["op"] != "hello":  # a post-slam reconnect raced in
                    await comm.close()
                    return
                await comm.send({"op": "welcome", "heartbeat_interval": 0.2})
                message = await comm.recv()
                assert message["op"] == "request"
                await comm.close()  # no reply: the campaign is over
                slammed.set()

            lst = comm_core.listener("inproc://", slam_after_request)
            await lst.start()
            worker = AsyncWorker(
                lst.address,
                max_idle=0.5,
                reconnect_delay=0.05,
                reply_timeout=5.0,
            )
            run = asyncio.create_task(worker.run())
            await asyncio.wait_for(slammed.wait(), timeout=5.0)
            started = time.monotonic()
            # The scheduler is gone for good: reconnects now fail, so the
            # worker must notice the dead comm, retry, and idle out.
            await lst.stop()
            await asyncio.wait_for(run, timeout=10.0)
            return time.monotonic() - started

        elapsed = asyncio.run(scenario())
        # max_idle (0.5s) plus slack; a wedge would take reply_timeout (5s).
        assert elapsed < 3.0, f"worker wedged on a dead connection ({elapsed:.1f}s)"
