"""Per-community workload profiles of the CIMENT grid (section 5.2).

"Every community has its own behavior [...] the numerical physicists have
long (up to several weeks), sequential jobs to perform, while the computer
scientists' jobs are shorter, focusing mainly on debug."

Each profile describes, for one research community, the statistical shape of
its *local* job stream (runtimes, parallelism, submission rate) and how much
multi-parametric *grid* work it injects into the central best-effort server.
Durations are expressed in hours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.core.job import Job, MoldableJob, ParametricSweep
from repro.core.speedup import AmdahlSpeedup, make_runtime_table
from repro.workload.arrivals import poisson_arrivals
from repro.workload.parametric import generate_parametric_bags

RandomState = Union[int, np.random.Generator, None]


def _rng(random_state: RandomState) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


@dataclass(frozen=True)
class CommunityProfile:
    """Statistical description of one community's workload."""

    name: str
    #: Log-uniform range of sequential runtimes, in hours.
    runtime_range: Tuple[float, float]
    #: Fraction of jobs that are strictly sequential.
    sequential_fraction: float
    #: Maximum useful parallelism of the parallel jobs.
    max_parallelism: int
    #: Range of Amdahl serial fractions for the parallel jobs.
    serial_fraction_range: Tuple[float, float]
    #: Mean inter-arrival time between two local submissions, in hours.
    mean_interarrival: float
    #: Number of multi-parametric bags submitted to the grid per simulated
    #: campaign (0 = the community never uses the grid).
    parametric_bags: int
    #: Number of runs per bag (log-uniform range).
    runs_range: Tuple[int, int] = (200, 2000)
    #: Per-run duration range, in hours.
    run_time_range: Tuple[float, float] = (0.05, 0.3)


#: The four communities of the CIMENT project mentioned in the paper
#: ("Numerical Physicists, Astrophysicists, Medical Researchers, Computer
#: Scientists, ...").  Parameters follow the qualitative description of
#: section 5.2.
COMMUNITY_PROFILES: Dict[str, CommunityProfile] = {
    "numerical-physics": CommunityProfile(
        name="numerical-physics",
        runtime_range=(24.0, 336.0),     # 1 day .. 2 weeks
        sequential_fraction=0.9,          # "long sequential jobs"
        max_parallelism=8,
        serial_fraction_range=(0.2, 0.5),
        mean_interarrival=6.0,
        parametric_bags=2,
    ),
    "computer-science": CommunityProfile(
        name="computer-science",
        runtime_range=(0.05, 4.0),       # minutes .. a few hours ("debug")
        sequential_fraction=0.3,
        max_parallelism=64,
        serial_fraction_range=(0.02, 0.15),
        mean_interarrival=0.5,
        parametric_bags=1,
    ),
    "astrophysics": CommunityProfile(
        name="astrophysics",
        runtime_range=(2.0, 72.0),
        sequential_fraction=0.4,
        max_parallelism=32,
        serial_fraction_range=(0.05, 0.3),
        mean_interarrival=3.0,
        parametric_bags=3,
    ),
    "medical-research": CommunityProfile(
        name="medical-research",
        runtime_range=(0.5, 24.0),
        sequential_fraction=0.6,
        max_parallelism=16,
        serial_fraction_range=(0.1, 0.4),
        mean_interarrival=2.0,
        parametric_bags=2,
        runs_range=(1000, 10000),        # image-processing style sweeps
        run_time_range=(0.02, 0.1),
    ),
}


def community_workload(
    profile: Union[str, CommunityProfile],
    n_jobs: int,
    machine_count: int,
    *,
    random_state: RandomState = None,
    online: bool = True,
) -> List[Job]:
    """Local (cluster) jobs of one community.

    Returns moldable jobs (sequential jobs are moldable jobs with a single
    admissible allocation) carrying the community name in ``job.owner``.
    """

    if isinstance(profile, str):
        try:
            profile = COMMUNITY_PROFILES[profile]
        except KeyError:
            raise KeyError(
                f"unknown community {profile!r}; known: {sorted(COMMUNITY_PROFILES)}"
            ) from None
    if n_jobs < 0:
        raise ValueError("n_jobs must be >= 0")
    rng = _rng(random_state)
    lo, hi = profile.runtime_range
    jobs: List[Job] = []
    for i in range(n_jobs):
        seq = float(math.exp(rng.uniform(math.log(lo), math.log(hi))))
        if rng.random() < profile.sequential_fraction:
            runtimes = [seq]
        else:
            max_procs = min(profile.max_parallelism, machine_count)
            max_procs = int(rng.integers(2, max_procs + 1)) if max_procs >= 2 else 1
            s_lo, s_hi = profile.serial_fraction_range
            model = AmdahlSpeedup(float(rng.uniform(s_lo, s_hi)))
            runtimes = make_runtime_table(seq, max_procs, model)
        jobs.append(
            MoldableJob(
                name=f"{profile.name}-{i:05d}",
                runtimes=runtimes,
                owner=profile.name,
                weight=1.0,
            )
        )
    if online:
        jobs = poisson_arrivals(
            jobs, mean_interarrival=profile.mean_interarrival, random_state=rng
        )
    return jobs


def grid_workload(
    profile: Union[str, CommunityProfile],
    *,
    random_state: RandomState = None,
) -> List[ParametricSweep]:
    """Multi-parametric bags the community submits to the central grid server."""

    if isinstance(profile, str):
        profile = COMMUNITY_PROFILES[profile]
    rng = _rng(random_state)
    return generate_parametric_bags(
        profile.parametric_bags,
        runs_range=profile.runs_range,
        run_time_range=profile.run_time_range,
        owner=profile.name,
        random_state=rng,
        name_prefix=f"{profile.name}-sweep",
    )


def full_ciment_workload(
    jobs_per_community: int,
    machine_count: int,
    *,
    random_state: RandomState = None,
) -> Tuple[Dict[str, List[Job]], List[ParametricSweep]]:
    """Local jobs of every community plus the pooled grid bags.

    Returns ``(local_jobs_by_community, grid_bags)``; the grid simulators map
    each community to its cluster (see :mod:`repro.platform.ciment`).
    """

    rng = _rng(random_state)
    local: Dict[str, List[Job]] = {}
    bags: List[ParametricSweep] = []
    for name, profile in sorted(COMMUNITY_PROFILES.items()):
        local[name] = community_workload(
            profile, jobs_per_community, machine_count, random_state=rng
        )
        bags.extend(grid_workload(profile, random_state=rng))
    return local, bags
