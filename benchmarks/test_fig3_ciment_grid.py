"""FIG3-CIMENT: Figure 3 -- the four largest clusters of the CIMENT project.

Builds the exact platform of Figure 3 (104 bi-Itanium2/Myrinet, 48 bi-Xeon
/GigE, 40 + 24 bi-Athlon/Eth100), generates the per-community workloads of
section 5.2 and runs the centralized best-effort organisation on it.  The
benchmark reports the platform inventory and the per-cluster outcome; the
simulation runs as one cell of the parallel sweep harness with flat,
JSON-serialisable metrics.
"""

from __future__ import annotations


from repro.experiments.reporting import ascii_table
from repro.platform.ciment import CIMENT_CLUSTERS, ciment_grid
from repro.simulation.grid_sim import CentralizedGridSimulator
from repro.workload.communities import community_workload, grid_workload

#: Community -> cluster mapping used by the CIMENT experiments (each cluster
#: is owned by one community, see repro.platform.ciment).
COMMUNITY_CLUSTER = {
    "computer-science": "icluster-itanium",
    "numerical-physics": "xeon-cluster",
    "astrophysics": "athlon-cluster-a",
    "medical-research": "athlon-cluster-b",
}


def run_ciment_cell(seed):
    """Simulate the CIMENT grid and flatten the outcome to metrics."""

    grid = ciment_grid()
    local = {}
    bags = []
    for index, (community, cluster_name) in enumerate(sorted(COMMUNITY_CLUSTER.items())):
        cluster = grid.cluster(cluster_name)
        local[cluster_name] = community_workload(
            community, 12, cluster.processor_count, random_state=10 + index
        )
        bags.extend(grid_workload(community, random_state=50 + index))
    simulator = CentralizedGridSimulator(grid, local_policy="backfill")
    result = simulator.run(local, bags)
    return {
        "node_count": grid.node_count,
        "processor_count": grid.processor_count,
        "cluster_names": sorted(c.name for c in grid),
        "outcome": [
            {
                "cluster": cluster.name,
                "community": cluster.community,
                "local_jobs": result.local_criteria[cluster.name].n_jobs,
                "local_makespan_h": result.local_criteria[cluster.name].makespan,
                "utilization": result.utilization[cluster.name],
            }
            for cluster in grid
        ],
        # Ownership invariant, checked in-simulation: every local job on a
        # community's cluster belongs to that community.
        "owners_ok": {
            cluster.name: all(
                entry.job.owner == cluster.community
                for entry in result.local_schedules[cluster.name]
            )
            for cluster in grid
        },
        "total_runs_completed": result.total_runs_completed,
        "expected_runs": sum(bag.n_runs for bag in bags),
        "kills": result.kills,
        "launches": result.launches,
    }


def test_figure3_ciment_platform_and_simulation(run_sweep, report):
    result = run_sweep("fig3-ciment", run_ciment_cell)
    row = result.rows[0]

    inventory = [
        {"cluster": name, "nodes": nodes, "cores/node": cores, "interconnect": net}
        for name, nodes, cores, _speed, net, _bw, _comm in CIMENT_CLUSTERS
    ]
    report(
        "Figure 3: the 4 largest CIMENT clusters",
        ascii_table(inventory) + "\n" + ascii_table(row["outcome"])
        + f"\nbest-effort runs completed: {row['total_runs_completed']}, "
          f"kills: {row['kills']}, launches: {row['launches']}",
    )

    # Platform shape of Figure 3.
    assert row["node_count"] == 216 and row["processor_count"] == 432
    assert set(row["cluster_names"]) == set(COMMUNITY_CLUSTER.values())
    # Every community's local jobs were executed on its own cluster.
    assert all(row["owners_ok"].values())
    # The multi-parametric grid jobs all completed via best-effort filling.
    assert row["total_runs_completed"] == row["expected_runs"]
    # Local jobs are never disturbed: kills only remove best-effort runs,
    # which are resubmitted (launches = runs + kills).
    assert row["launches"] == row["total_runs_completed"] + row["kills"]
