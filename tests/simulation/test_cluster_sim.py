"""Unit tests of the on-line single-cluster simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import RigidJob
from repro.core.policies.backfilling import ConservativeBackfilling
from repro.simulation.cluster_sim import ClusterSimulator, compare_policies
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs, generate_rigid_jobs

#: The basic queue policies (historically cluster_sim.QUEUE_POLICIES).
QUEUE_POLICIES = ("fifo", "backfill", "smallest-first")


class TestClusterSimulator:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulator(8, policy="magic")
        with pytest.raises(ValueError):
            ClusterSimulator(0)

    def test_empty_workload(self):
        result = ClusterSimulator(8).run([])
        assert result.makespan == 0.0
        assert len(result.schedule) == 0

    def test_single_job(self):
        job = RigidJob(name="a", nbproc=2, duration=5.0)
        result = ClusterSimulator(4).run([job])
        assert result.makespan == pytest.approx(5.0)
        assert result.schedule["a"].start == 0.0
        assert result.criteria.utilization == pytest.approx(0.5)

    def test_all_jobs_complete_and_schedule_is_valid(self):
        jobs = generate_rigid_jobs(30, 8, random_state=1)
        jobs = poisson_arrivals(jobs, rate=0.5, random_state=1)
        for policy in QUEUE_POLICIES:
            result = ClusterSimulator(8, policy=policy).run(jobs)
            result.schedule.validate()
            assert len(result.schedule) == 30
            assert result.policy == policy

    def test_release_dates_respected(self):
        jobs = [RigidJob(name="a", nbproc=1, duration=1.0, release_date=10.0)]
        result = ClusterSimulator(2).run(jobs)
        assert result.schedule["a"].start >= 10.0

    def test_fifo_does_not_bypass_blocked_head(self):
        jobs = [
            RigidJob(name="running", nbproc=3, duration=10.0, release_date=0.0),
            RigidJob(name="head", nbproc=4, duration=1.0, release_date=1.0),
            RigidJob(name="small", nbproc=1, duration=1.0, release_date=2.0),
        ]
        result = ClusterSimulator(4, policy="fifo").run(jobs)
        # Strict FCFS: "small" must not start before "head".
        assert result.schedule["small"].start >= result.schedule["head"].start - 1e-9

    def test_backfill_uses_idle_processors(self):
        jobs = [
            RigidJob(name="running", nbproc=3, duration=10.0, release_date=0.0),
            RigidJob(name="head", nbproc=4, duration=1.0, release_date=1.0),
            RigidJob(name="small", nbproc=1, duration=1.0, release_date=2.0),
        ]
        result = ClusterSimulator(4, policy="backfill").run(jobs)
        assert result.schedule["small"].start == pytest.approx(2.0)

    def test_moldable_jobs_get_allocations(self):
        jobs = generate_moldable_jobs(15, 8, random_state=2)
        result = ClusterSimulator(8, policy="backfill").run(jobs)
        result.schedule.validate()
        assert len(result.schedule) == 15

    def test_trace_is_consistent_with_schedule(self):
        jobs = generate_rigid_jobs(10, 4, random_state=3)
        result = ClusterSimulator(4).run(jobs)
        assert result.trace.count("submit") == 10
        assert result.trace.count("start") == 10
        assert result.trace.count("complete") == 10
        for entry in result.schedule:
            assert result.trace.first_start(entry.job.name) == pytest.approx(entry.start)

    def test_simulated_fifo_matches_constructed_conservative_for_sequential_jobs(self):
        """On purely sequential jobs with no contention subtleties the on-line
        FIFO simulation and the conservative backfilling construction give the
        same makespan (cross-validation of the two code paths)."""

        jobs = [RigidJob(name=f"j{i}", nbproc=1, duration=2.0, release_date=float(i))
                for i in range(8)]
        simulated = ClusterSimulator(2, policy="fifo").run(jobs)
        constructed = ConservativeBackfilling().schedule(jobs, 2)
        assert simulated.makespan == pytest.approx(constructed.makespan())

    def test_ratios_are_computed(self):
        jobs = generate_rigid_jobs(20, 8, random_state=4)
        result = ClusterSimulator(8).run(jobs)
        assert result.ratios.makespan_ratio >= 1.0 - 1e-9
        assert result.ratios.weighted_completion_ratio >= 1.0 - 1e-9


class TestComparePolicies:
    def test_compares_all_requested_policies(self):
        jobs = generate_rigid_jobs(20, 8, random_state=5)
        jobs = poisson_arrivals(jobs, rate=1.0, random_state=5)
        results = compare_policies(jobs, 8)
        assert set(results) == {"fifo", "backfill", "smallest-first"}
        for result in results.values():
            result.schedule.validate()
            assert len(result.schedule) == 20

    def test_backfill_utilization_at_least_fifo(self):
        jobs = generate_rigid_jobs(40, 8, random_state=6)
        jobs = poisson_arrivals(jobs, rate=2.0, random_state=6)
        results = compare_policies(jobs, 8, policies=("fifo", "backfill"))
        assert results["backfill"].makespan <= results["fifo"].makespan * 1.5 + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    n_jobs=st.integers(min_value=0, max_value=25),
    machines=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2_000),
)
def test_cluster_simulation_always_terminates_with_valid_schedules(n_jobs, machines, seed):
    """Property: the event-driven simulation completes every submitted job."""

    jobs = generate_rigid_jobs(n_jobs, machines, random_state=seed)
    jobs = poisson_arrivals(jobs, rate=1.0, random_state=seed) if jobs else []
    result = ClusterSimulator(machines, policy="backfill").run(jobs)
    result.schedule.validate()
    assert len(result.schedule) == n_jobs
