"""Generic experiment runner: parameter sweeps with seeded repetitions.

Every benchmark of the repository is a thin wrapper around this harness: it
declares a grid of parameters, a function running one configuration with one
seed and returning a flat ``dict`` of metrics, and the harness takes care of
running the cross product, collecting the rows and aggregating repetitions.

The sweep is organised in three separable stages:

1. **grid expansion** (:func:`repro.experiments.grid.expand_grid`) turns the
   declaration into an ordered list of self-contained, seeded cells;
2. **cell execution** maps a picklable cell function over the cells through
   an :class:`~repro.experiments.executors.Executor` -- serial, or a
   ``multiprocessing`` pool selected with ``executor=`` / the ``REPRO_JOBS``
   environment variable -- streaming outcomes back in submission order, with
   per-cell timing and error capture;
3. **aggregation** folds the streamed rows into summaries
   (:class:`repro.metrics.aggregate.StreamingAggregator`).

Because cells carry deterministic seeds and executors preserve order, the
rows of a parallel run are identical to a serial run.  An optional on-disk
cache (:class:`repro.experiments.cache.ResultCache`) skips cells already
computed by a previous invocation.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.experiments.cache import ResultCache
from repro.experiments.executors import ExecutorSpec, resolve_executor
from repro.experiments.grid import Cell, CellFunction, CellOutcome, RunFunction, expand_grid
from repro.metrics.aggregate import StreamingAggregator, Summary, aggregate_runs, group_by


class CellExecutionError(RuntimeError):
    """A cell failed; carries the failing configuration and worker traceback.

    Instances must survive process and socket boundaries: a nested harness
    may raise one inside a pool worker, and the distributed runtime moves
    failure information over TCP.  The default exception reduction would
    try to re-call ``__init__(message)`` and fail (the constructor wants an
    experiment and an outcome), so pickling is routed through
    :func:`_restore_cell_execution_error`, and :meth:`to_payload` /
    :meth:`from_payload` provide the JSON-safe form for the wire.
    """

    def __init__(self, experiment: str, outcome: CellOutcome) -> None:
        cell = outcome.cell
        self.experiment = experiment
        self.params = cell.params_dict
        self.seed = cell.seed
        self.error_type = outcome.error_type
        self.worker_traceback = outcome.error or ""
        super().__init__(
            f"experiment {experiment!r}: cell {cell.describe()} failed with "
            f"{outcome.error_type}\n--- worker traceback ---\n{self.worker_traceback}"
        )

    def __reduce__(self):
        return (_restore_cell_execution_error, (self.to_payload(),))

    def to_payload(self) -> Dict[str, Any]:
        """A flat dict round-tripping through JSON (params may need ``repr``
        for non-JSON values; the standard metric/sweep types are safe)."""

        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "seed": self.seed,
            "error_type": self.error_type,
            "worker_traceback": self.worker_traceback,
            "message": self.args[0] if self.args else "",
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CellExecutionError":
        return _restore_cell_execution_error(payload)


def _restore_cell_execution_error(payload: Mapping[str, Any]) -> CellExecutionError:
    """Rebuild a :class:`CellExecutionError` without re-running ``__init__``."""

    error = CellExecutionError.__new__(CellExecutionError)
    RuntimeError.__init__(error, payload.get("message", ""))
    error.experiment = payload.get("experiment", "")
    error.params = dict(payload.get("params") or {})
    error.seed = payload.get("seed", 0)
    error.error_type = payload.get("error_type")
    error.worker_traceback = payload.get("worker_traceback", "")
    return error


@dataclass
class ExperimentResult:
    """All rows produced by an experiment plus aggregation helpers."""

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    executor: str = "serial"
    outcomes: List[CellOutcome] = field(default_factory=list)
    errors: List[CellOutcome] = field(default_factory=list)
    cache_hits: int = 0
    aggregator: Optional[StreamingAggregator] = field(default=None, repr=False)

    def filter(self, **conditions: Any) -> "ExperimentResult":
        """Rows matching all the given column=value conditions."""

        rows = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in conditions.items())
        ]
        return ExperimentResult(name=self.name, rows=rows, elapsed_seconds=self.elapsed_seconds)

    def column(self, key: str) -> List[Any]:
        return [row[key] for row in self.rows if key in row]

    def aggregate(self, metrics: Optional[Sequence[str]] = None) -> Dict[str, Summary]:
        return aggregate_runs(self.rows, metrics=metrics)

    def summary(self) -> Dict[str, Summary]:
        """Summaries folded while the rows streamed in (no second pass)."""

        if self.aggregator is not None:
            return self.aggregator.summaries()
        aggregator = StreamingAggregator()
        aggregator.update_rows(self.rows)
        return aggregator.summaries()

    def grouped_mean(self, group_key: str, metric: str) -> Dict[Any, float]:
        """Mean of ``metric`` for each value of ``group_key`` (sweep curves)."""

        out: Dict[Any, float] = {}
        for value, rows in group_by(self.rows, group_key).items():
            values = [float(r[metric]) for r in rows if metric in r]
            if values:
                out[value] = sum(values) / len(values)
        return out

    @property
    def cell_seconds(self) -> List[float]:
        """Per-cell wall-clock times, in row order."""

        return [outcome.elapsed_seconds for outcome in self.outcomes]

    def __len__(self) -> int:
        return len(self.rows)


@functools.lru_cache(maxsize=256)
def _source_text(target: Any) -> Optional[str]:
    """``inspect.getsource`` with a cache keyed by the function object.

    ``getsource`` re-reads and re-tokenises the defining file on every call;
    campaign drivers fingerprint the same run functions once per sweep (and
    the distributed scheduler once per submitted task), so the memo turns
    the repeated cost into a dict hit.  Stale entries are impossible within
    a process: a re-defined function is a new object, hence a new key.
    """

    try:
        return inspect.getsource(target)
    except (OSError, TypeError):
        return None


def run_fingerprint(run: RunFunction) -> str:
    """A short fingerprint of a run function, used to version cache entries.

    Covers the qualified name, the source text when available, and -- for
    :func:`functools.partial` objects -- the bound arguments, so editing an
    experiment or changing its configuration invalidates its cached cells.
    """

    parts: List[str] = []
    target = run
    while isinstance(target, functools.partial):
        parts.append(repr(target.args))
        parts.append(repr(sorted(target.keywords.items())))
        target = target.func
    parts.append(f"{getattr(target, '__module__', '')}.{getattr(target, '__qualname__', repr(target))}")
    try:
        source = _source_text(target)
    except TypeError:  # unhashable callable: fall back to the direct read
        try:
            source = inspect.getsource(target)
        except (OSError, TypeError):
            source = None
    if source is not None:
        parts.append(source)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:16]


def run_experiment(
    name: str,
    run: RunFunction,
    parameters: Optional[Mapping[str, Sequence[Any]]] = None,
    *,
    repetitions: int = 3,
    base_seed: int = 1234,
    executor: ExecutorSpec = None,
    cache: Union[None, str, Path, ResultCache] = None,
    cache_version: Optional[str] = None,
    sink: Any = None,
    listener: Any = None,
    progress: Optional[Callable[[str], None]] = None,
    on_row: Optional[Callable[[Dict[str, Any]], None]] = None,
    capture_errors: bool = False,
) -> ExperimentResult:
    """Run ``run(seed=..., **params)`` over the whole parameter grid.

    Parameters
    ----------
    name:
        Experiment identifier (stored in every row, keys the cache).
    run:
        Callable returning a mapping of metric name to value.  Must be
        picklable (a module-level function or :func:`functools.partial` of
        one) to use a process-pool executor.
    parameters:
        Mapping of parameter name to the sequence of values to sweep.
    repetitions / base_seed:
        Seeds are ``base_seed + repetition_index``: reproducible, distinct
        across repetitions, independent of the executor.
    executor:
        ``None`` (use ``REPRO_JOBS``, default serial), ``"serial"``,
        ``"process"``/``"auto"``, an integer job count, ``"distributed"``
        or a ``tcp://host:port`` distributed-scheduler bind address, or an
        :class:`~repro.experiments.executors.Executor` instance.
    cache:
        Optional on-disk cell cache (a directory path or a
        :class:`~repro.experiments.cache.ResultCache`); completed cells are
        skipped on re-runs.
    sink:
        Optional :class:`~repro.store.api.RowSink` (or a campaign-store
        directory path) receiving every completed cell as it streams in --
        replayed ones included, so a cached re-run still lands a full row
        set.  Flushed when the sweep finishes, even on error.
    listener:
        Optional :class:`repro.telemetry.listener.SweepListener` receiving
        typed cell-lifecycle notifications (on_sweep_start / on_cell_start /
        on_row / on_error / on_sweep_end).  The process-wide telemetry bus
        is always notified as well, so the dashboard observes every sweep.
    progress:
        Deprecated (emits ``DeprecationWarning``): called with a one-line
        message as each cell completes.  Use
        ``listener=CallbackListener(progress=...)`` instead.
    on_row:
        Deprecated (emits ``DeprecationWarning``): called with each
        finished row, in order.  Use
        ``listener=CallbackListener(on_row=...)`` instead.
    capture_errors:
        When false (default) a failing cell raises
        :class:`CellExecutionError` with the failing configuration attached;
        when true the failure is recorded in ``result.errors`` and the sweep
        continues.
    """

    from repro.store.api import coerce_sink, compose_row
    from repro.telemetry import FanoutListener, get_bus, listener_with_callbacks
    from repro.telemetry.spans import SpanRecorder

    # Span-gated instrumentation: enabled only when the bus has a live
    # subscriber (a dashboard, a flight recorder) or REPRO_SPANS forces it
    # on, so the per-cell path costs nothing in an unobserved run.
    spans = SpanRecorder.for_bus(get_bus(), experiment=name)
    with spans.span("harness.expand"):
        cells = expand_grid(parameters, repetitions=repetitions, base_seed=base_seed)
    backend = resolve_executor(executor)
    store = ResultCache.coerce(cache)
    row_sink = coerce_sink(sink)
    caller_listener = listener_with_callbacks(listener, progress, on_row)
    notify = FanoutListener([get_bus(), caller_listener])
    version = cache_version if cache_version is not None else (
        run_fingerprint(run) if (store is not None or row_sink is not None) else ""
    )

    start = time.perf_counter()
    aggregator = StreamingAggregator()
    result = ExperimentResult(name=name, executor=backend.name, aggregator=aggregator)

    cached: Dict[int, CellOutcome] = {}
    pending: List[Cell] = []
    if store is not None:
        for cell in cells:
            hit = store.lookup(name, cell, version)
            if hit is not None:
                cached[cell.index] = hit
            else:
                pending.append(cell)
    else:
        pending = list(cells)

    live = backend.map(CellFunction(run), pending)
    notify.on_sweep_start(name, len(cells))
    try:
        for cell in cells:
            outcome = cached.get(cell.index)
            if outcome is None:
                notify.on_cell_start(name, cell)
                # "harness.wait": blocked on the executor for the next
                # outcome -- worker-side spans (cell.execute etc.) account
                # for the inside of this wait, so the names never overlap
                # in a phase attribution.
                with spans.span("harness.wait"):
                    outcome = next(live)
            else:
                spans.counter("cache-hit")
            result.outcomes.append(outcome)
            if outcome.cached:
                result.cache_hits += 1
            if outcome.failed:
                if not capture_errors:
                    raise CellExecutionError(name, outcome)
                result.errors.append(outcome)
                notify.on_error(name, cell, outcome)
                continue
            # "harness.emit": compose + aggregate + cache/sink writes +
            # listener fan-out for one finished cell.
            with spans.span("harness.emit"):
                row = compose_row(name, cell, outcome)
                result.rows.append(row)
                aggregator.update(row)
                if store is not None and not outcome.cached:
                    store.store(name, cell, outcome, version)
                if row_sink is not None:
                    row_sink.write(name, cell, outcome, version)
                notify.on_row(name, cell, row, outcome)
    finally:
        # Release the executor deterministically: generator-based backends
        # hold real resources at their final yield (a bound TCP port and
        # forked workers for the distributed executor, a process pool for
        # the pool executor), and an abandoned suspended generator only
        # tears them down whenever reference-counting happens to collect it
        # -- too late for the next campaign re-binding the same port, and
        # never while a CellExecutionError traceback keeps the frame alive.
        close = getattr(live, "close", None)
        if close is not None:
            close()
        if row_sink is not None:
            row_sink.flush()
        spans.flush()
        result.elapsed_seconds = time.perf_counter() - start
        notify.on_sweep_end(name, result)

    return result


@dataclass
class ExperimentRunner:
    """Run a function over a parameter grid with repetitions.

    Declarative counterpart of :func:`run_experiment` (which it delegates
    to); kept for backwards compatibility and for callers that build the
    runner in one place and execute it in another.
    """

    name: str
    run: RunFunction
    parameters: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    repetitions: int = 3
    base_seed: int = 1234

    def execute(
        self,
        *,
        listener: Any = None,
        progress: Optional[Callable[[str], None]] = None,
        executor: ExecutorSpec = None,
        cache: Union[None, str, Path, ResultCache] = None,
    ) -> ExperimentResult:
        return run_experiment(
            self.name,
            self.run,
            self.parameters,
            repetitions=self.repetitions,
            base_seed=self.base_seed,
            executor=executor,
            cache=cache,
            listener=listener,
            progress=progress,
        )


def sweep(
    name: str,
    run: RunFunction,
    *,
    repetitions: int = 3,
    base_seed: int = 1234,
    executor: ExecutorSpec = None,
    cache: Union[None, str, Path, ResultCache] = None,
    **parameters: Sequence[Any],
) -> ExperimentResult:
    """Convenience wrapper: ``sweep("exp", fn, n_jobs=[10, 100], policy=["a", "b"])``."""

    return run_experiment(
        name,
        run,
        parameters,
        repetitions=repetitions,
        base_seed=base_seed,
        executor=executor,
        cache=cache,
    )
