"""Unified result model of the scheduling runtime.

Every runtime-backed simulation -- single cluster, centralized best-effort
grid, decentralized exchange -- returns one :class:`SimulationRecord`.  The
record always carries the per-cluster schedules, the per-cluster criteria,
the full event trace and the horizon; organisation-specific sections (Figure
2 ratios, best-effort bag statistics, migration and fairness accounting) are
filled in by the simulator that produced it and default to empty.

``mode`` tells which organisation produced the record.  Thin *compat
properties* reproduce the attribute surface of the three legacy result
dataclasses (``SimulationResult``, ``GridSimulationResult``,
``DecentralizedResult``) so existing callers migrate incrementally; those
legacy names are now aliases of this class.

:class:`RunRecord` is the uniform per-execution view: one completed job run
(name, cluster, start, runtime, processors), the row type the reporting
layer consumes regardless of which simulator ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.allocation import Schedule
from repro.core.criteria import CriteriaReport
from repro.metrics.fairness import FairnessReport
from repro.metrics.ratios import RatioReport
from repro.simulation.tracing import Trace

#: The three runtime organisations.
MODE_CLUSTER = "cluster"
MODE_CENTRALIZED = "grid-centralized"
MODE_DECENTRALIZED = "grid-decentralized"
MODES = (MODE_CLUSTER, MODE_CENTRALIZED, MODE_DECENTRALIZED)


class RunRecord:
    """One completed job execution, uniform across all organisations."""

    __slots__ = ("name", "cluster", "start", "runtime", "processors", "owner", "kind")

    def __init__(
        self,
        name: str,
        cluster: Optional[str],
        start: float,
        runtime: float,
        processors: Tuple[int, ...],
        owner: Optional[str] = None,
        kind: str = "local",
    ) -> None:
        self.name = name
        self.cluster = cluster
        self.start = start
        self.runtime = runtime
        self.processors = processors
        self.owner = owner
        self.kind = kind

    @property
    def end(self) -> float:
        return self.start + self.runtime

    @property
    def nbproc(self) -> int:
        return len(self.processors)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job": self.name,
            "cluster": self.cluster,
            "start": self.start,
            "end": self.end,
            "runtime": self.runtime,
            "nbproc": self.nbproc,
            "owner": self.owner,
            "kind": self.kind,
        }

    def __repr__(self) -> str:
        return (
            f"RunRecord(name={self.name!r}, cluster={self.cluster!r}, "
            f"start={self.start!r}, runtime={self.runtime!r}, nbproc={self.nbproc})"
        )


@dataclass
class SimulationRecord:
    """Outcome of any runtime-backed simulation (all three organisations)."""

    #: One of :data:`MODES`.
    mode: str
    #: Total processor count of the simulated platform.
    machine_count: int
    #: Per-cluster schedule of the (local) jobs, keyed by cluster name.
    schedules: Dict[str, Schedule]
    #: Per-cluster criteria report, same keys as ``schedules``.
    cluster_criteria: Dict[str, CriteriaReport]
    #: Full event trace.
    trace: Trace
    #: Simulation end time.
    horizon: float
    #: Per-cluster policy name, same keys as ``schedules``.
    policies: Dict[str, str] = field(default_factory=dict)

    # -- single-cluster section (MODE_CLUSTER) ------------------------------
    #: Figure-2 style lower-bound ratios (single-cluster runs only).
    ratios: Optional[RatioReport] = None

    # -- centralized best-effort section (MODE_CENTRALIZED) -----------------
    #: Average utilization per cluster (local + best-effort work).
    utilization: Dict[str, float] = field(default_factory=dict)
    #: Completion time of each multi-parametric bag (None if unfinished).
    bag_completion: Dict[str, Optional[float]] = field(default_factory=dict)
    #: Number of best-effort runs completed per bag.
    runs_completed: Dict[str, int] = field(default_factory=dict)
    #: Number of best-effort kills (total).
    kills: int = 0
    #: Number of best-effort runs launched (including resubmissions).
    launches: int = 0

    # -- decentralized exchange section (MODE_DECENTRALIZED) ----------------
    migrations: int = 0
    migrated_jobs: List[str] = field(default_factory=list)
    fairness: Optional[FairnessReport] = None
    #: Flow time (C_j - r_j) of each completed job.
    flows: Dict[str, float] = field(default_factory=dict)
    #: Mean flow time over all jobs of the grid.
    mean_flow: float = 0.0
    #: Maximum flow time over all jobs.
    max_flow: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown simulation mode {self.mode!r}; known: {MODES}")

    # -- uniform views -------------------------------------------------------
    @property
    def cluster_names(self) -> List[str]:
        return list(self.schedules)

    def runs(self) -> List[RunRecord]:
        """Every completed execution, ordered by (start, cluster, name).

        Local jobs come from the per-cluster schedules; completed
        best-effort runs (centralized organisation) are reconstructed from
        their start/complete trace events and tagged ``kind="best-effort"``
        -- killed runs are not listed, matching the server's completion
        accounting.
        """

        records = [
            RunRecord(
                name=entry.job.name,
                cluster=cluster or None,
                start=entry.start,
                runtime=entry.allocation.runtime,
                processors=entry.processors,
                owner=entry.job.owner,
            )
            for cluster, schedule in self.schedules.items()
            for entry in schedule
        ]
        open_runs: Dict[Tuple[str, Optional[str]], Tuple[float, Tuple[int, ...]]] = {}
        for event in self.trace:
            if event.info != "best-effort":
                continue
            key = (event.job, event.cluster)
            if event.kind == "start":
                open_runs[key] = (event.time, event.processors)
            elif event.kind == "complete" and key in open_runs:
                start, processors = open_runs.pop(key)
                records.append(
                    RunRecord(
                        name=event.job,
                        cluster=event.cluster,
                        start=start,
                        runtime=event.time - start,
                        processors=processors,
                        kind="best-effort",
                    )
                )
        records.sort(key=lambda r: (r.start, r.cluster or "", r.name))
        return records

    def summary(self) -> Dict[str, Any]:
        """Headline metrics as one flat dict (the reporting row)."""

        out: Dict[str, Any] = {
            "mode": self.mode,
            "policy": "+".join(sorted(set(self.policies.values()))) or None,
            "machine_count": self.machine_count,
            "n_jobs": sum(len(s) for s in self.schedules.values()),
            "makespan": self.makespan,
            "horizon": self.horizon,
        }
        if self.mode == MODE_CLUSTER:
            report = next(iter(self.cluster_criteria.values()))
            out["utilization"] = report.utilization
            out["mean_stretch"] = report.mean_stretch
            if self.ratios is not None:
                out["makespan_ratio"] = self.ratios.makespan_ratio
                out["weighted_completion_ratio"] = self.ratios.weighted_completion_ratio
        if self.mode == MODE_CENTRALIZED:
            out["kills"] = self.kills
            out["launches"] = self.launches
            out["runs_completed"] = self.total_runs_completed
            out["grid_throughput"] = self.grid_throughput()
        if self.mode == MODE_DECENTRALIZED:
            out["migrations"] = self.migrations
            out["mean_flow"] = self.mean_flow
            out["max_flow"] = self.max_flow
            if self.fairness is not None:
                out["fairness_on_work"] = self.fairness.fairness_on_work
        return out

    # -- compat: legacy SimulationResult surface ----------------------------
    @property
    def schedule(self) -> Schedule:
        """The single-cluster schedule (single-cluster records only)."""

        if len(self.schedules) != 1:
            raise AttributeError(
                f"record has {len(self.schedules)} per-cluster schedules; "
                "use .schedules"
            )
        return next(iter(self.schedules.values()))

    @property
    def criteria(self):
        """Single report for cluster records, per-cluster dict for grids."""

        if self.mode == MODE_CLUSTER:
            return next(iter(self.cluster_criteria.values()))
        return self.cluster_criteria

    @property
    def policy(self) -> str:
        """The policy name (single-policy records); joined names otherwise."""

        names = sorted(set(self.policies.values()))
        return names[0] if len(names) == 1 else "+".join(names)

    @property
    def makespan(self) -> float:
        if self.mode == MODE_CLUSTER:
            return next(iter(self.cluster_criteria.values())).makespan
        return max((s.makespan() for s in self.schedules.values()), default=0.0)

    # -- compat: legacy GridSimulationResult surface ------------------------
    @property
    def local_schedules(self) -> Dict[str, Schedule]:
        return self.schedules

    @property
    def local_criteria(self) -> Dict[str, CriteriaReport]:
        return self.cluster_criteria

    @property
    def total_runs_completed(self) -> int:
        return sum(self.runs_completed.values())

    def grid_throughput(self) -> float:
        """Best-effort runs completed per unit of time."""

        if self.horizon <= 0:
            return 0.0
        return self.total_runs_completed / self.horizon
