"""Discrete-event simulation substrate.

The paper's evaluation ("A simulated implementation of a variation of the
bi-criteria algorithm has been realized") relies on an event-driven simulator
of a cluster / light grid.  This package provides that substrate, written
from scratch for this reproduction:

* :mod:`repro.simulation.events` -- event queue primitives,
* :mod:`repro.simulation.engine` -- the simulation kernel (clock, event loop,
  generator-based processes),
* :mod:`repro.simulation.resources` -- a processor-pool resource with
  reservations and preemption (needed to kill best-effort jobs),
* :mod:`repro.simulation.tracing` -- execution traces and Gantt recording,
* :mod:`repro.simulation.cluster_sim` -- on-line simulation of one cluster
  driven by any scheduling policy,
* :mod:`repro.simulation.grid_sim` -- the centralized light-grid organisation
  of section 5.2 (best-effort multi-parametric jobs filling the holes),
* :mod:`repro.simulation.decentralized` -- the decentralized organisation
  (load exchange between clusters).

The three simulators are configurations of the unified job-lifecycle core in
:mod:`repro.runtime` and all return its
:class:`~repro.runtime.record.SimulationRecord`; they are imported lazily
here because the runtime itself builds on this package's kernel modules.
"""

from repro.simulation.engine import Simulator, Process, Timeout
from repro.simulation.events import Event, EventQueue
from repro.simulation.kernel import compiled_available, resolve_kernel
from repro.simulation.resources import ProcessorPool, AllocationRequest
from repro.simulation.tracing import Trace, TraceEvent

#: Simulator names resolved lazily (they import repro.runtime, which imports
#: this package's kernel modules -- a direct import here would be circular).
_LAZY = {
    "ClusterSimulator": "repro.simulation.cluster_sim",
    "SimulationResult": "repro.simulation.cluster_sim",
    "compare_policies": "repro.simulation.cluster_sim",
    "CentralizedGridSimulator": "repro.simulation.grid_sim",
    "GridSimulationResult": "repro.simulation.grid_sim",
    "GridServer": "repro.simulation.grid_sim",
    "DecentralizedGridSimulator": "repro.simulation.decentralized",
    "DecentralizedResult": "repro.simulation.decentralized",
}

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Event",
    "EventQueue",
    "compiled_available",
    "resolve_kernel",
    "ProcessorPool",
    "AllocationRequest",
    "Trace",
    "TraceEvent",
    "ClusterSimulator",
    "SimulationResult",
    "CentralizedGridSimulator",
    "GridSimulationResult",
    "DecentralizedGridSimulator",
    "DecentralizedResult",
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
