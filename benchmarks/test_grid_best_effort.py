"""GRID-BESTEFFORT: the centralized best-effort organisation of section 5.2.

Measures, on a 3-cluster light grid with per-community local workloads and a
stream of multi-parametric grid bags:

* the local-job **non-disturbance invariant** ("local users of the clusters
  will not be disturbed by grid jobs"): local start/completion times are
  identical with and without the grid jobs;
* the grid throughput (best-effort runs completed per unit of time) and the
  kill/resubmission overhead ("since there are a large number of relatively
  small runs, the cost of killing one of them is not too big");
* the utilisation gain brought by filling the holes of the local schedules.

The with-grid and without-grid variants run as two cells of the parallel
sweep harness; each cell flattens its simulator outcome (including a
per-job start/completion fingerprint for the non-disturbance check) into
JSON-serialisable metrics.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import ascii_table
from repro.platform.generators import homogeneous_cluster
from repro.platform.grid import LightGrid
from repro.simulation.grid_sim import CentralizedGridSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs
from repro.workload.parametric import generate_parametric_bags

CLUSTERS = (("alpha", 32), ("beta", 16), ("gamma", 16))


def build_grid():
    return LightGrid(
        "best-effort-grid",
        [homogeneous_cluster(name, procs, community=f"{name}-community")
         for name, procs in CLUSTERS],
    )


def build_workload():
    local = {}
    for index, (name, procs) in enumerate(CLUSTERS):
        jobs = generate_moldable_jobs(20, procs, random_state=index,
                                      name_prefix=f"{name}-local")
        local[name] = poisson_arrivals(jobs, rate=1.0, random_state=index)
    bags = generate_parametric_bags(4, runs_range=(200, 400), run_time_range=(0.2, 0.5),
                                    random_state=9)
    return local, bags


def run_best_effort_cell(seed, grid_jobs):
    """One cell: the simulation with or without the best-effort grid stream."""

    grid = build_grid()
    local, bags = build_workload()
    simulator = CentralizedGridSimulator(grid, local_policy="backfill",
                                         best_effort_enabled=grid_jobs)
    result = simulator.run(local, bags if grid_jobs else [])
    return {
        "utilization": {c.name: result.utilization[c.name] for c in grid},
        "local_makespan": {c.name: result.local_criteria[c.name].makespan for c in grid},
        # Per-job (start, completion) times: the non-disturbance fingerprint.
        "local_fingerprint": {
            cluster.name: {
                entry.job.name: [entry.start, entry.completion]
                for entry in result.local_schedules[cluster.name]
            }
            for cluster in grid
        },
        "total_runs_completed": result.total_runs_completed,
        "expected_runs": sum(bag.n_runs for bag in bags),
        "kills": result.kills,
        "launches": result.launches,
        "throughput": result.grid_throughput() if grid_jobs else 0.0,
    }


def test_centralized_best_effort_grid(run_sweep, report):
    result = run_sweep("grid-best-effort", run_best_effort_cell,
                       {"grid_jobs": (True, False)})
    by_flag = {row["grid_jobs"]: row for row in result.rows}
    with_grid, without_grid = by_flag[True], by_flag[False]

    rows = [
        {
            "cluster": name,
            "util_without_grid": without_grid["utilization"][name],
            "util_with_grid": with_grid["utilization"][name],
            "local_makespan": with_grid["local_makespan"][name],
        }
        for name, _procs in CLUSTERS
    ]
    summary = (
        f"best-effort runs: {with_grid['total_runs_completed']} / "
        f"{with_grid['expected_runs']} completed, kills: {with_grid['kills']}, "
        f"grid throughput: {with_grid['throughput']:.2f} runs per time unit"
    )
    report("GRID-BESTEFFORT: centralized organisation", ascii_table(rows) + "\n" + summary)

    # Non-disturbance invariant: identical local schedules with and without grid jobs.
    for name, _procs in CLUSTERS:
        baseline = without_grid["local_fingerprint"][name]
        disturbed = with_grid["local_fingerprint"][name]
        assert set(baseline) == set(disturbed)
        for job_name, (start, completion) in baseline.items():
            assert disturbed[job_name][0] == pytest.approx(start)
            assert disturbed[job_name][1] == pytest.approx(completion)
    # All grid work eventually completes despite the kills.
    assert with_grid["total_runs_completed"] == with_grid["expected_runs"]
    assert with_grid["launches"] == with_grid["total_runs_completed"] + with_grid["kills"]
    # Filling the holes increases utilisation on every cluster.
    for row in rows:
        assert row["util_with_grid"] >= row["util_without_grid"] - 1e-9
    assert sum(r["util_with_grid"] for r in rows) > sum(r["util_without_grid"] for r in rows)
