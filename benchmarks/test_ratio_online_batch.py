"""RATIO-BATCH: the on-line batch transform of section 4.2 (ratio 2*rho -> 3 + eps).

On-line instances (Poisson release dates) are scheduled with the batch
transform wrapped around the MRT off-line algorithm.  The measured makespan
ratio against the release-date-aware lower bound must stay below
2 * (3/2 + eps) = 3 + eps, and in practice well below it.  The (jobs, load)
grid goes through the parallel sweep harness.
"""

from __future__ import annotations


from repro.core.bounds import makespan_lower_bound, performance_ratio
from repro.core.criteria import makespan
from repro.core.policies.batch_online import BatchOnlineScheduler
from repro.core.policies.mrt import MRTScheduler
from repro.experiments.reporting import ascii_table
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs

EPSILON = 0.05
MACHINES = 64
JOB_COUNTS = (30, 60, 120)
LOADS = (0.5, 1.5)       # arrival intensity relative to a busy platform


def run_batch_cell(seed, jobs, load):
    """One sweep cell: the batch transform on one on-line instance."""

    scheduler = BatchOnlineScheduler(MRTScheduler(epsilon=EPSILON))
    # Instance seed derived from the grid point (historical convention).
    instance_seed = int(jobs * 10 + load * 100)
    workload = generate_moldable_jobs(jobs, MACHINES, random_state=instance_seed)
    workload = poisson_arrivals(workload, rate=load * MACHINES / 50.0,
                                random_state=instance_seed)
    schedule = scheduler.schedule(workload, MACHINES)
    schedule.validate()
    bound = makespan_lower_bound(workload, MACHINES)
    return {
        "batches": scheduler.batch_count(workload, MACHINES),
        "ratio": performance_ratio(makespan(schedule), bound),
    }


def test_online_batch_ratio(run_sweep, report):
    result = run_sweep("ratio-batch", run_batch_cell,
                       {"jobs": JOB_COUNTS, "load": LOADS})
    rows = result.rows
    report("RATIO-BATCH: on-line batch(MRT) makespan (stated bound 3 + eps)",
           ascii_table(rows))
    worst = max(row["ratio"] for row in rows)
    assert worst <= 3.0 + 2 * EPSILON + 1e-9
    # Batching really happens on the on-line instances.
    assert any(row["batches"] >= 2 for row in rows)
