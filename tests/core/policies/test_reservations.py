"""Unit tests of reservation-aware scheduling (section 5.1)."""

import pytest

from repro.core.allocation import Reservation
from repro.core.job import MoldableJob, RigidJob
from repro.core.policies.base import SchedulerError
from repro.core.policies.reservations import ReservationAwareScheduler
from repro.workload.models import generate_rigid_jobs


class TestReservationAwareScheduler:
    def test_no_reservations_behaves_like_backfilling(self, random_rigid_jobs):
        schedule = ReservationAwareScheduler().schedule(random_rigid_jobs, 16)
        schedule.validate()
        assert len(schedule) == len(random_rigid_jobs)

    def test_jobs_avoid_reserved_window(self):
        # The whole platform is reserved in [5, 10): a job of duration 3
        # released at 4 must either finish before 5 or start after 10.
        reservation = Reservation(processors=tuple(range(4)), start=5.0, end=10.0,
                                  label="demo")
        scheduler = ReservationAwareScheduler([reservation])
        job = RigidJob(name="a", nbproc=2, duration=3.0, release_date=4.0)
        schedule = scheduler.schedule([job], 4)
        schedule.validate()
        start = schedule["a"].start
        assert start >= 10.0 or start + 3.0 <= 5.0 + 1e-9

    def test_job_fits_before_reservation(self):
        reservation = Reservation(processors=tuple(range(4)), start=5.0, end=10.0)
        scheduler = ReservationAwareScheduler([reservation])
        job = RigidJob(name="quick", nbproc=1, duration=2.0, release_date=0.0)
        schedule = scheduler.schedule([job], 4)
        assert schedule["quick"].start == pytest.approx(0.0)

    def test_partial_reservation_leaves_other_processors_usable(self):
        # Only 2 of 4 processors are reserved: a 2-processor job can still run
        # during the window on the free processors.
        reservation = Reservation(processors=(0, 1), start=0.0, end=100.0)
        scheduler = ReservationAwareScheduler([reservation])
        job = RigidJob(name="a", nbproc=2, duration=5.0)
        schedule = scheduler.schedule([job], 4)
        schedule.validate()
        assert schedule["a"].start == pytest.approx(0.0)
        assert set(schedule["a"].processors).isdisjoint({0, 1})

    def test_reservation_outside_platform_rejected(self):
        reservation = Reservation(processors=(7,), start=0.0, end=1.0)
        with pytest.raises(SchedulerError):
            ReservationAwareScheduler([reservation]).schedule(
                [RigidJob(name="a", nbproc=1, duration=1.0)], 4
            )

    def test_multiple_reservations_and_jobs(self):
        reservations = [
            Reservation(processors=(0, 1), start=2.0, end=6.0, label="demo-1"),
            Reservation(processors=(2, 3), start=8.0, end=12.0, label="demo-2"),
        ]
        jobs = generate_rigid_jobs(12, 4, random_state=31)
        scheduler = ReservationAwareScheduler(reservations)
        schedule = scheduler.schedule(jobs, 4)
        schedule.validate()   # Schedule.validate also checks reservation overlaps
        assert len(schedule) == 12

    def test_moldable_jobs_supported(self):
        reservation = Reservation(processors=(0,), start=0.0, end=50.0)
        jobs = [MoldableJob(name="m", runtimes=[10.0, 6.0, 5.0])]
        schedule = ReservationAwareScheduler([reservation]).schedule(jobs, 4)
        schedule.validate()
        assert len(schedule) == 1

    def test_empty(self):
        assert len(ReservationAwareScheduler().schedule([], 4)) == 0
