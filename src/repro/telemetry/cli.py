"""Command-line interface of the telemetry flight recorder.

::

    python -m repro.telemetry record cluster.figure2 --smoke --store runs/flight
    python -m repro.telemetry record --all --smoke --store runs/flight \\
        --executor inproc://                       # distributed, forwarded spans
    python -m repro.telemetry replay --store runs/flight --topic worker. --limit 20
    python -m repro.telemetry report phase-attribution --store runs/flight
    python -m repro.telemetry report worker-occupancy --store runs/flight --engine py
    python -m repro.telemetry smoke                # CI: fleet + recorder + parity

``record`` runs scenarios with a :class:`~repro.telemetry.recorder.
TelemetryRecorder` attached to the process bus, so every event -- sweep
lifecycle, scheduler decisions, forwarded ``worker.*`` spans -- lands in
``telemetry.<campaign>`` partitions of the given store.  ``replay`` prints
recorded events back in landed order; ``report`` runs the telemetry twin
queries (``span-summary``, ``worker-occupancy``, ``phase-attribution``).

Recording is observation only: scenario digests are bit-identical with the
recorder on or off (``smoke`` proves exactly that against a 4-worker
``tcp://`` fleet).

Exit codes: 0 on success, 1 when a scenario or a smoke assertion fails,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.store.queries import QUERIES, QueryError, run_query
from repro.telemetry.recorder import TELEMETRY_SCENARIO_PREFIX, TelemetryRecorder

#: Queries `report` lists first (any named query is accepted).
TELEMETRY_QUERIES = ("span-summary", "worker-occupancy", "phase-attribution")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Flight recorder: record runs, replay events, report timings.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    store_arg = argparse.ArgumentParser(add_help=False)
    store_arg.add_argument(
        "--store", type=Path, required=True, metavar="DIR",
        help="campaign store directory telemetry rows land in / are read from",
    )

    rec = sub.add_parser(
        "record", parents=[store_arg],
        help="run scenarios with the flight recorder attached",
    )
    rec.add_argument("names", nargs="*", help="scenario names (see repro.scenarios list)")
    rec.add_argument("--all", action="store_true", help="record every registered scenario")
    rec.add_argument("--tag", default=None, help="with --all: only scenarios with this tag")
    rec.add_argument("--smoke", action="store_true", help="run the reduced smoke tier")
    rec.add_argument(
        "--campaign", default="telemetry",
        help="campaign label for the telemetry partitions (default: telemetry)",
    )
    rec.add_argument(
        "--executor", dest="jobs", default=None, metavar="SPEC",
        help="executor spec: serial, N, process, tcp://host:port, inproc://, ...",
    )
    rec.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="also write the scenario summary JSON here",
    )

    rep = sub.add_parser(
        "replay", parents=[store_arg],
        help="print recorded events back, in landed order, as JSON lines",
    )
    rep.add_argument("--campaign", default=None, help="only this recorded campaign")
    rep.add_argument(
        "--topic", default=None, metavar="PREFIX",
        help="only topics with this prefix (e.g. worker. or scheduler)",
    )
    rep.add_argument("--kind", default=None, help="only events of this payload kind")
    rep.add_argument("--limit", type=int, default=None, help="stop after N events")

    rpt = sub.add_parser(
        "report",
        parents=[store_arg],
        help="run a named query over the recorded telemetry",
        description="Named queries over recorded telemetry; the telemetry trio is "
                    + ", ".join(TELEMETRY_QUERIES) + " but any store query works.",
    )
    rpt.add_argument("name", nargs="?", default=None, help="query name (see --list)")
    rpt.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="query parameter (repeatable), e.g. --param campaign=fleet",
    )
    rpt.add_argument(
        "--engine", choices=("auto", "sql", "py"), default="auto",
        help="query engine (default: SQL when duckdb is installed)",
    )
    rpt.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the result rows to this file instead of printing a table",
    )
    rpt.add_argument(
        "--format", default=None, dest="out_format",
        help="output format (default: inferred from the --out suffix)",
    )
    rpt.add_argument("--list", action="store_true", dest="list_queries",
                     help="list the named queries")

    smk = sub.add_parser(
        "smoke",
        help="CI smoke: tcp fleet + recorder, digest parity, query-engine parity",
    )
    smk.add_argument(
        "--scenario", default="fig2.bicriteria",
        help="scenario to run (default: fig2.bicriteria)",
    )
    smk.add_argument("--workers", type=int, default=4, help="fleet size (default: 4)")
    smk.add_argument(
        "--comm", choices=("tcp", "inproc"), default="tcp",
        help="fleet transport (default: tcp)",
    )
    smk.add_argument(
        "--dir", type=Path, default=None, metavar="DIR",
        help="working directory for the store (default: a temp dir)",
    )
    return parser


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.experiments.executors import ExecutorSpecError
    from repro.scenarios.cli import _executor, run_specs, select_specs
    from repro.store.columnar import CampaignStore

    specs = select_specs(args.names, args.all, args.tag)
    if not specs:
        if specs is not None:  # an empty --all/--tag selection
            print("no scenarios matched", file=sys.stderr)
        return 2
    try:
        executor = _executor(args.jobs)
    except (ValueError, ExecutorSpecError) as error:
        print(error, file=sys.stderr)
        return 2
    store = CampaignStore(args.store, campaign=args.campaign)
    recorder = TelemetryRecorder(store, campaign=args.campaign)
    with recorder:
        status = run_specs(specs, smoke=args.smoke, executor=executor, output=args.output)
    print(
        f"flight recorder: {recorder.recorded} event(s) -> {store.root} "
        f"(campaign {recorder.campaign}, {recorder.dropped} dropped, "
        f"{recorder.skipped} skipped)"
    )
    return status


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.store.columnar import CampaignStore

    store = CampaignStore(args.store)
    printed = 0
    for record in store.records(campaign=args.campaign):
        if not str(record.get("scenario", "")).startswith(TELEMETRY_SCENARIO_PREFIX):
            continue
        try:
            event = json.loads(record["row_json"])
        except (KeyError, TypeError, ValueError):
            continue
        if args.topic and not str(event.get("topic", "")).startswith(args.topic):
            continue
        if args.kind and event.get("kind") != args.kind:
            continue
        print(json.dumps(event, sort_keys=True))
        printed += 1
        if args.limit is not None and printed >= args.limit:
            break
    print(f"{printed} event(s) replayed from {store.root}", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.store.api import StoreUnavailableError
    from repro.store.cli import _emit, _parse_params
    from repro.store.columnar import CampaignStore

    if args.list_queries:
        width = max(len(name) for name in QUERIES)
        for name in sorted(QUERIES, key=lambda n: (n not in TELEMETRY_QUERIES, n)):
            query = QUERIES[name]
            params = ", ".join(list(query.required) + [f"[{p}]" for p in query.optional])
            print(f"{name:<{width}}  ({params})  {query.description}")
        return 0
    if args.name is None:
        print("give a query name (or --list)", file=sys.stderr)
        return 2
    try:
        params = _parse_params(args.param)
        store = CampaignStore(args.store)
        rows = run_query(store, args.name, params, engine=args.engine)
    except (QueryError, StoreUnavailableError) as error:
        print(error, file=sys.stderr)
        return 2
    _emit(rows, args.out, args.out_format, title=f"{args.name} ({len(rows)} rows)")
    return 0


def _rows_agree(py_rows: List[Dict[str, Any]], sql_rows: List[Dict[str, Any]]) -> bool:
    """Engine parity: same shape, same keys, floats within tolerance."""

    if len(py_rows) != len(sql_rows):
        return False
    for py_row, sql_row in zip(py_rows, sql_rows):
        for field, expected in py_row.items():
            got = sql_row.get(field)
            if isinstance(expected, float):
                if got is None or abs(float(got) - expected) > 1e-9 * max(1.0, abs(expected)):
                    return False
            elif got != expected:
                return False
    return True


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Fleet + recorder smoke: the CI telemetry job in one command.

    1. serial, unobserved baseline digest;
    2. the same scenario over a recorded ``--workers`` fleet -- digest must
       be bit-identical;
    3. forwarded ``worker.*`` events and span rows must have landed;
    4. ``phase-attribution`` must be non-empty and agree across engines.
    """

    import tempfile

    from repro.distributed.executor import inproc_fleet, local_mini_cluster
    from repro.scenarios.composer import run_scenario, rows_digest
    from repro.scenarios.registry import get
    from repro.store.analytics import duckdb_available
    from repro.store.columnar import CampaignStore

    spec = get(args.scenario)
    workdir = args.dir or Path(tempfile.mkdtemp(prefix="telemetry-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    store_dir = workdir / "flight"
    failures: List[str] = []

    baseline = run_scenario(spec, smoke=True)
    baseline_digest = rows_digest(baseline.rows)
    print(f"serial baseline: {len(baseline.rows)} rows, digest {baseline_digest[:12]}")

    store = CampaignStore(store_dir, campaign="fleet")
    recorder = TelemetryRecorder(store, campaign="fleet")
    make_fleet = local_mini_cluster if args.comm == "tcp" else inproc_fleet
    with recorder:
        executor = make_fleet(args.workers)
        recorded = run_scenario(spec, smoke=True, executor=executor)
    recorded_digest = rows_digest(recorded.rows)
    print(
        f"{args.comm} fleet ({args.workers} workers, recorded): "
        f"{len(recorded.rows)} rows, digest {recorded_digest[:12]}; "
        f"{recorder.recorded} event(s) landed, {recorder.dropped} dropped"
    )
    if recorded_digest != baseline_digest:
        failures.append("digest mismatch: recording perturbed the results")

    events = [json.loads(r["row_json"]) for r in store.records()]
    worker_events = [e for e in events if str(e.get("topic", "")).startswith("worker.")]
    span_events = [e for e in events if e.get("kind") == "span"]
    print(f"{len(events)} recorded event(s): {len(worker_events)} worker.*, "
          f"{len(span_events)} spans")
    if not worker_events:
        failures.append("no forwarded worker.* events landed in the store")
    if not span_events:
        failures.append("no span events landed in the store")

    py_rows = run_query(store, "phase-attribution", engine="py")
    if not py_rows:
        failures.append("phase-attribution (py) returned no rows")
    else:
        phases = ", ".join(f"{r['phase']}={r['total_seconds']:.3f}s" for r in py_rows)
        print(f"phase-attribution: {phases}")
    if duckdb_available():
        sql_rows = run_query(store, "phase-attribution", engine="sql")
        if not _rows_agree(py_rows, sql_rows):
            failures.append("phase-attribution: sql and py engines disagree")
        else:
            print("phase-attribution: sql and py engines agree")
    else:
        print("duckdb not installed: skipped sql/py parity leg")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(("FAIL" if failures else "ok") + f": telemetry smoke ({store_dir})")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `report --list` is store-free: satisfy --store before argparse does.
    if argv[:1] == ["report"] and "--list" in argv and "--store" not in argv:
        argv += ["--store", "."]
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
