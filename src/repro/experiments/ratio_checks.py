"""Empirical verification of the approximation ratios stated in the paper.

Section 4 states four results:

* **3/2 + eps** for the off-line moldable makespan (MRT, section 4.1);
* **2 rho** for the batch transform, i.e. **3 + eps** when combined with MRT
  (section 4.2);
* **8** (unweighted) / **8.53** (weighted) for the SMART shelves on the sum
  of completion times of rigid jobs (section 4.3);
* **4 rho** on both criteria for the bi-criteria doubling batches
  (section 4.4).

The checks below generate random instances, run the corresponding policy and
report the worst observed ratio against the lower bounds.  Observing ratios
below the stated bounds does not *prove* the bounds, but a violation would
reveal an implementation bug -- this is how the benchmarks tie the code back
to the claims of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.bounds import (
    makespan_lower_bound,
    performance_ratio,
    sum_completion_lower_bound,
    weighted_completion_lower_bound,
)
from repro.core.criteria import (
    makespan,
    sum_completion_times,
    weighted_completion_time,
)
from repro.core.policies.batch_online import BatchOnlineScheduler
from repro.core.policies.bicriteria import BiCriteriaScheduler
from repro.core.policies.mrt import GreedyMoldableScheduler, MRTScheduler
from repro.core.policies.shelf import SmartShelfScheduler
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import WorkloadConfig, generate_moldable_jobs, generate_rigid_jobs

RandomState = Union[int, np.random.Generator, None]


@dataclass(frozen=True)
class RatioCheck:
    """Result of one empirical ratio check."""

    policy: str
    criterion: str
    stated_bound: float
    worst_ratio: float
    mean_ratio: float
    instances: int

    @property
    def within_bound(self) -> bool:
        return self.worst_ratio <= self.stated_bound + 1e-9

    def as_dict(self) -> Dict[str, float]:
        return {
            "policy": self.policy,
            "criterion": self.criterion,
            "stated_bound": self.stated_bound,
            "worst_ratio": self.worst_ratio,
            "mean_ratio": self.mean_ratio,
            "instances": self.instances,
            "within_bound": self.within_bound,
        }


def _summary(policy: str, criterion: str, bound: float, ratios: Sequence[float]) -> RatioCheck:
    return RatioCheck(
        policy=policy,
        criterion=criterion,
        stated_bound=bound,
        worst_ratio=max(ratios),
        mean_ratio=sum(ratios) / len(ratios),
        instances=len(ratios),
    )


def check_mrt_ratio(
    *,
    machine_count: int = 32,
    job_counts: Sequence[int] = (10, 30, 60),
    repetitions: int = 3,
    epsilon: float = 0.05,
    seed: int = 7,
) -> RatioCheck:
    """Empirical makespan ratio of the MRT algorithm (stated bound 3/2 + eps)."""

    scheduler = MRTScheduler(epsilon=epsilon)
    ratios: List[float] = []
    for n_jobs in job_counts:
        for repetition in range(repetitions):
            jobs = generate_moldable_jobs(
                n_jobs, machine_count, random_state=seed + 97 * repetition + n_jobs
            )
            schedule = scheduler.schedule(jobs, machine_count)
            schedule.validate()
            bound = makespan_lower_bound(jobs, machine_count)
            ratios.append(performance_ratio(makespan(schedule), bound))
    return _summary("mrt-dual-approx", "makespan", 1.5 + epsilon, ratios)


def check_batch_ratio(
    *,
    machine_count: int = 32,
    job_counts: Sequence[int] = (20, 50),
    repetitions: int = 3,
    epsilon: float = 0.05,
    load: float = 1.5,
    seed: int = 11,
) -> RatioCheck:
    """Empirical on-line makespan ratio of the batch transform (stated bound 2 * (3/2 + eps)).

    The lower bound used already accounts for release dates, so the measured
    ratio is directly comparable to the ``3 + eps`` statement of section 4.2.
    """

    scheduler = BatchOnlineScheduler(MRTScheduler(epsilon=epsilon))
    ratios: List[float] = []
    for n_jobs in job_counts:
        for repetition in range(repetitions):
            rng_seed = seed + 131 * repetition + n_jobs
            jobs = generate_moldable_jobs(n_jobs, machine_count, random_state=rng_seed)
            # Arrival rate chosen to keep the platform busy but not saturated.
            jobs = poisson_arrivals(
                jobs,
                rate=load * machine_count / 50.0,
                random_state=rng_seed,
            )
            schedule = scheduler.schedule(jobs, machine_count)
            schedule.validate()
            bound = makespan_lower_bound(jobs, machine_count)
            ratios.append(performance_ratio(makespan(schedule), bound))
    return _summary("batch(mrt)", "makespan", 2 * (1.5 + epsilon), ratios)


def check_smart_ratio(
    *,
    machine_count: int = 32,
    job_counts: Sequence[int] = (20, 50, 100),
    repetitions: int = 3,
    weighted: bool = True,
    seed: int = 13,
) -> RatioCheck:
    """Empirical (weighted) completion-time ratio of the SMART shelves (bounds 8 / 8.53)."""

    scheduler = SmartShelfScheduler()
    ratios: List[float] = []
    config = WorkloadConfig(weight_scheme="random" if weighted else "unit")
    for n_jobs in job_counts:
        for repetition in range(repetitions):
            jobs = generate_rigid_jobs(
                n_jobs,
                machine_count,
                config=config,
                random_state=seed + 17 * repetition + n_jobs,
            )
            schedule = scheduler.schedule(jobs, machine_count)
            schedule.validate()
            if weighted:
                value = weighted_completion_time(schedule)
                bound = weighted_completion_lower_bound(jobs, machine_count)
            else:
                value = sum_completion_times(schedule)
                bound = sum_completion_lower_bound(jobs, machine_count)
            ratios.append(performance_ratio(value, bound))
    stated = 8.53 if weighted else 8.0
    criterion = "weighted_completion" if weighted else "sum_completion"
    return _summary("smart-shelves", criterion, stated, ratios)


def check_bicriteria_ratio(
    *,
    machine_count: int = 32,
    job_counts: Sequence[int] = (20, 50, 100),
    repetitions: int = 3,
    seed: int = 17,
) -> Tuple[RatioCheck, RatioCheck]:
    """Empirical (Cmax, sum w C) ratios of the bi-criteria scheduler (bound 4 rho each).

    ``rho`` is the ratio of the inner makespan procedure; with the greedy
    moldable procedure rho <= 2, hence the stated bound 8 on both criteria.
    """

    scheduler = BiCriteriaScheduler(GreedyMoldableScheduler())
    cmax_ratios: List[float] = []
    wc_ratios: List[float] = []
    config = WorkloadConfig(weight_scheme="work")
    for n_jobs in job_counts:
        for repetition in range(repetitions):
            jobs = generate_moldable_jobs(
                n_jobs,
                machine_count,
                config=config,
                random_state=seed + 29 * repetition + n_jobs,
            )
            schedule = scheduler.schedule(jobs, machine_count)
            schedule.validate()
            cmax_ratios.append(
                performance_ratio(makespan(schedule), makespan_lower_bound(jobs, machine_count))
            )
            wc_ratios.append(
                performance_ratio(
                    weighted_completion_time(schedule),
                    weighted_completion_lower_bound(jobs, machine_count),
                )
            )
    rho = 2.0
    return (
        _summary("bicriteria(greedy)", "makespan", 4 * rho, cmax_ratios),
        _summary("bicriteria(greedy)", "weighted_completion", 4 * rho, wc_ratios),
    )
