#!/usr/bin/env python3
"""Which policy for which application?

The title question of the paper: different applications (workload shapes) and
different objectives call for different scheduling policies.  This example
runs a panel of policies on three application profiles and prints, for each
criterion, which policy wins -- reproducing the qualitative message of the
paper:

* makespan-oriented moldable scheduling  -> MRT dual approximation,
* (weighted) average completion time     -> SMART shelves / WSPT ordering,
* both at once                           -> the bi-criteria doubling batches,
* on-line arrival streams                -> batch transform / backfilling,
* bags of small independent runs         -> divisible-load style policies
  (see examples/divisible_load.py and the grid examples).

Each application profile is a declarative :class:`ScenarioSpec` built right
here (specs do not have to be registered to run), and the policy panel is a
sweep axis over ``policy.kind``: the composer hands every (application,
policy) cell to the parallel experiment harness, so ``REPRO_JOBS=4`` fans
the panel out to four worker processes with identical results.

Run with:  python examples/policy_comparison.py
"""

from __future__ import annotations

from typing import Any, Dict

from repro.experiments.reporting import ascii_table
from repro.scenarios import ComponentSpec, ScenarioSpec, run_scenario

MACHINES = 64

POLICY_PANEL = [
    "lpt",
    "wspt",
    "smart-shelves",
    "mrt",
    "bicriteria",
    "batch-mrt",
    "conservative-bf",
    "easy-bf",
]

#: Three application profiles inspired by the CIMENT communities, as specs.
APPLICATIONS: Dict[str, ScenarioSpec] = {
    # Off-line moldable batch (e.g. a campaign of numerical simulations).
    "moldable-batch": ScenarioSpec(
        name="panel.moldable-batch",
        model="offline",
        platform=ComponentSpec("count", {"machine_count": MACHINES}),
        workload=ComponentSpec("moldable", {"n_jobs": 60, "weight_scheme": "work"}),
        policy=ComponentSpec("lpt", {"capture_errors": True}),
        metrics=("policy_name", "makespan", "makespan_ratio",
                 "weighted_completion_ratio", "mean_stretch"),
        repetitions=1,
        seed=1,
        sweep={"policy.kind": POLICY_PANEL},
    ),
    # Rigid production jobs with priorities (weighted completion time matters).
    "rigid-weighted": ScenarioSpec(
        name="panel.rigid-weighted",
        model="offline",
        platform=ComponentSpec("count", {"machine_count": MACHINES}),
        workload=ComponentSpec("rigid", {"n_jobs": 80, "weight_scheme": "random"}),
        policy=ComponentSpec("lpt", {"capture_errors": True}),
        metrics=("policy_name", "makespan", "makespan_ratio",
                 "weighted_completion_ratio", "mean_stretch"),
        repetitions=1,
        seed=2,
        sweep={"policy.kind": POLICY_PANEL},
    ),
    # On-line stream of interactive / debug jobs (stretch matters).
    "online-stream": ScenarioSpec(
        name="panel.online-stream",
        model="offline",
        platform=ComponentSpec("count", {"machine_count": MACHINES}),
        workload=ComponentSpec("moldable", {"n_jobs": 60, "runtime_range": [0.5, 10.0]}),
        arrival=ComponentSpec("poisson", {"rate": 2.0}),
        policy=ComponentSpec("lpt", {"capture_errors": True}),
        metrics=("policy_name", "makespan", "makespan_ratio",
                 "weighted_completion_ratio", "mean_stretch"),
        repetitions=1,
        seed=3,
        sweep={"policy.kind": POLICY_PANEL},
    ),
}


def main() -> None:
    for application, spec in APPLICATIONS.items():
        result = run_scenario(spec)
        rows: list[Dict[str, Any]] = []
        for row in result.rows:
            keep = {k: row[k] for k in spec.metrics if k in row}
            if "error" in row:
                keep["error"] = row["error"]
            rows.append(keep)
        n_jobs = spec.workload.params["n_jobs"]
        print(ascii_table(rows, title=f"\n=== application: {application} "
                                      f"({n_jobs} jobs, {MACHINES} processors) ==="))
        numeric = [r for r in rows if "makespan" in r]
        best_cmax = min(numeric, key=lambda r: r["makespan"])["policy_name"]
        best_wc = min(numeric, key=lambda r: r["weighted_completion_ratio"])["policy_name"]
        best_stretch = min(numeric, key=lambda r: r["mean_stretch"])["policy_name"]
        print(f"  best makespan            : {best_cmax}")
        print(f"  best weighted completion : {best_wc}")
        print(f"  best mean stretch        : {best_stretch}")


if __name__ == "__main__":
    main()
