"""ABLATE-BICRIT: ablation of the bi-criteria scheduler's design choices.

DESIGN.md calls out three knobs of the Figure-2 scheduler whose values are
design choices rather than part of the published algorithm:

* the **initial deadline** of the doubling sequence (smallest job runtime by
  default, vs. starting directly at the makespan lower bound);
* the **inner batch procedure** (the deadline-aware canonical allocation by
  default, vs. the full MRT dual approximation, vs. the greedy
  allocate-then-pack baseline);
* the admission **ordering** implied by the weights (weights proportional to
  work vs. unit weights).

The ablation quantifies how much each choice matters on the Figure-2 workload
so a reader can tell which parts of the reproduction drive the curves; the
variants run as cells of the parallel sweep harness.
Shape assertions: the default configuration is never the worst on the
weighted-completion ratio, and starting the doubling at the lower bound trades
weighted completion time for makespan (it merges the early batches).
"""

from __future__ import annotations


from repro.core.bounds import (
    makespan_lower_bound,
    performance_ratio,
    weighted_completion_lower_bound,
)
from repro.core.criteria import makespan, weighted_completion_time
from repro.core.policies.bicriteria import BiCriteriaScheduler
from repro.core.policies.mrt import GreedyMoldableScheduler, MRTScheduler
from repro.experiments.reporting import ascii_table
from repro.workload.models import figure2_workload

MACHINES = 100
N_TASKS = 300
SEED = 2004

VARIANT_DEFAULT = "default (deadline-aware, d0=min runtime)"
VARIANT_MRT = "inner = MRT"
VARIANT_GREEDY = "inner = greedy allocate-then-pack"
VARIANT_BIG_D0 = "d0 = makespan lower bound"
VARIANTS = (VARIANT_DEFAULT, VARIANT_MRT, VARIANT_GREEDY, VARIANT_BIG_D0)


def make_scheduler(variant, lower_bound):
    if variant == VARIANT_DEFAULT:
        return BiCriteriaScheduler()
    if variant == VARIANT_MRT:
        return BiCriteriaScheduler(MRTScheduler())
    if variant == VARIANT_GREEDY:
        return BiCriteriaScheduler(GreedyMoldableScheduler())
    if variant == VARIANT_BIG_D0:
        return BiCriteriaScheduler(initial_deadline=lower_bound)
    raise ValueError(f"unknown variant {variant!r}")


def run_ablation_cell(seed, variant):
    """One sweep cell: one scheduler variant on the shared Figure-2 workload."""

    jobs = figure2_workload(N_TASKS, MACHINES, family="parallel", random_state=SEED)
    cmax_bound = makespan_lower_bound(jobs, MACHINES)
    wc_bound = weighted_completion_lower_bound(jobs, MACHINES)
    scheduler = make_scheduler(variant, cmax_bound)
    schedule = scheduler.schedule(jobs, MACHINES)
    schedule.validate()
    return {
        "batches": len(scheduler.last_batches),
        "cmax_ratio": performance_ratio(makespan(schedule), cmax_bound),
        "wc_ratio": performance_ratio(weighted_completion_time(schedule), wc_bound),
    }


def test_bicriteria_ablation(run_sweep, report):
    result = run_sweep("ablate-bicriteria", run_ablation_cell, {"variant": VARIANTS})
    rows = result.rows
    report("ABLATE-BICRIT: design choices of the Figure-2 scheduler "
           f"({N_TASKS} parallel tasks, {MACHINES} machines)", ascii_table(rows))

    by_variant = {row["variant"]: row for row in rows}
    default = by_variant[VARIANT_DEFAULT]
    big_d0 = by_variant[VARIANT_BIG_D0]

    # Every variant stays within the 4*rho envelope on both criteria.
    for row in rows:
        assert row["cmax_ratio"] <= 8.0
        assert row["wc_ratio"] <= 8.0
    # The inner procedure matters: the deadline-unaware greedy allocation is
    # the worst variant on both criteria (it inflates the work of every job),
    # and the default deadline-aware procedure is never the worst.
    worst_wc = max(rows, key=lambda r: r["wc_ratio"])["variant"]
    worst_cmax = max(rows, key=lambda r: r["cmax_ratio"])["variant"]
    assert worst_wc == VARIANT_GREEDY
    assert worst_cmax == VARIANT_GREEDY
    assert default["variant"] not in (worst_wc, worst_cmax)
    # Starting the doubling directly at the makespan lower bound collapses the
    # schedule into a single batch with a makespan close to the bound.  Note
    # the ablation finding recorded in EXPERIMENTS.md: with the Figure-2
    # weight convention (weight proportional to work) this single batch is
    # competitive on sum w C as well, because WSPT cannot discriminate between
    # jobs of equal weight density -- the doubling structure pays off for
    # heterogeneous weight/work ratios, not for this particular convention.
    assert big_d0["batches"] < default["batches"]
    assert big_d0["cmax_ratio"] <= default["cmax_ratio"] + 1e-9
