"""Unit tests of arrival processes, parametric bags, communities and SWF I/O."""

import io

import pytest

from repro.core.job import MoldableJob, ParametricSweep
from repro.workload.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    offline_arrivals,
    poisson_arrivals,
    scaled_load_arrivals,
)
from repro.workload.communities import (
    COMMUNITY_PROFILES,
    community_workload,
    full_ciment_workload,
    grid_workload,
)
from repro.workload.models import generate_rigid_jobs
from repro.workload.parametric import generate_parametric_bags, total_runs, total_work
from repro.workload.swf import jobs_to_swf, swf_to_jobs


class TestArrivals:
    def test_offline_sets_everything_to_zero(self):
        jobs = generate_rigid_jobs(10, 8, random_state=1)
        released = offline_arrivals(jobs)
        assert all(j.release_date == 0.0 for j in released)
        # Original jobs are left untouched (copies are returned).
        assert released[0] is not jobs[0]

    def test_poisson_reproducible_and_sorted(self):
        jobs = generate_rigid_jobs(20, 8, random_state=2)
        a = poisson_arrivals(jobs, rate=0.5, random_state=11)
        b = poisson_arrivals(jobs, rate=0.5, random_state=11)
        assert [j.release_date for j in a] == [j.release_date for j in b]
        dates = [j.release_date for j in sorted(a, key=lambda j: j.name)]
        assert all(d >= 0 for d in dates)
        assert dates == sorted(dates)   # names are assigned in arrival order

    def test_poisson_rate_controls_span(self):
        jobs = generate_rigid_jobs(200, 8, random_state=3)
        fast = poisson_arrivals(jobs, rate=10.0, random_state=4)
        slow = poisson_arrivals(jobs, rate=0.1, random_state=4)
        assert max(j.release_date for j in fast) < max(j.release_date for j in slow)

    def test_poisson_argument_validation(self):
        jobs = generate_rigid_jobs(5, 4, random_state=5)
        with pytest.raises(ValueError):
            poisson_arrivals(jobs)
        with pytest.raises(ValueError):
            poisson_arrivals(jobs, rate=1.0, mean_interarrival=1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(jobs, rate=-1.0)

    def test_bursty_arrivals_group_jobs(self):
        jobs = generate_rigid_jobs(25, 8, random_state=6)
        released = bursty_arrivals(jobs, burst_size=10, burst_gap=100.0, random_state=7)
        groups = {round(j.release_date // 100.0) for j in released}
        assert groups == {0, 1, 2}

    def test_scaled_load_arrivals_hits_target_utilization(self):
        jobs = generate_rigid_jobs(300, 16, random_state=8)
        released = scaled_load_arrivals(jobs, 16, target_utilization=0.5, random_state=9)
        span = max(j.release_date for j in released)
        total_area = sum(j.duration * j.nbproc for j in released)
        # Offered load ~ target utilisation (loose factor-two check: it is a
        # random process).
        offered = total_area / (span * 16)
        assert 0.2 < offered < 1.2


class TestParametricBags:
    def test_generation_ranges(self):
        bags = generate_parametric_bags(20, runs_range=(10, 100), run_time_range=(0.5, 1.5),
                                        random_state=1)
        assert len(bags) == 20
        assert all(10 <= b.n_runs <= 100 for b in bags)
        assert all(0.5 <= b.run_time <= 1.5 for b in bags)
        assert total_runs(bags) == sum(b.n_runs for b in bags)
        assert total_work(bags) == pytest.approx(sum(b.n_runs * b.run_time for b in bags))

    def test_release_spread(self):
        bags = generate_parametric_bags(10, release_spread=50.0, random_state=2)
        assert any(b.release_date > 0 for b in bags)
        assert all(b.release_date <= 50.0 for b in bags)

    def test_invalid(self):
        with pytest.raises(ValueError):
            generate_parametric_bags(-1)
        with pytest.raises(ValueError):
            generate_parametric_bags(1, runs_range=(0, 10))
        with pytest.raises(ValueError):
            generate_parametric_bags(1, run_time_range=(0.0, 1.0))


class TestCommunities:
    def test_profiles_cover_the_four_paper_communities(self):
        assert set(COMMUNITY_PROFILES) == {
            "numerical-physics", "computer-science", "astrophysics", "medical-research",
        }

    def test_physicists_jobs_are_long_and_sequential(self):
        jobs = community_workload("numerical-physics", 50, 64, random_state=1, online=False)
        sequential = sum(1 for j in jobs if j.max_procs == 1)
        assert sequential >= 40          # "long sequential jobs"
        assert min(j.sequential_time() for j in jobs) >= 24.0

    def test_computer_science_jobs_are_short(self):
        cs = community_workload("computer-science", 50, 64, random_state=1, online=False)
        phys = community_workload("numerical-physics", 50, 64, random_state=1, online=False)
        mean_cs = sum(j.sequential_time() for j in cs) / len(cs)
        mean_phys = sum(j.sequential_time() for j in phys) / len(phys)
        assert mean_cs < mean_phys / 10

    def test_owner_is_set(self):
        jobs = community_workload("astrophysics", 5, 16, random_state=2)
        assert all(j.owner == "astrophysics" for j in jobs)

    def test_unknown_community_rejected(self):
        with pytest.raises(KeyError):
            community_workload("chemistry", 5, 16)

    def test_grid_workload_returns_bags(self):
        bags = grid_workload("medical-research", random_state=3)
        assert all(isinstance(b, ParametricSweep) for b in bags)
        assert all(b.owner == "medical-research" for b in bags)

    def test_full_ciment_workload(self):
        local, bags = full_ciment_workload(5, 64, random_state=4)
        assert set(local) == set(COMMUNITY_PROFILES)
        assert all(len(jobs) == 5 for jobs in local.values())
        assert len(bags) == sum(p.parametric_bags for p in COMMUNITY_PROFILES.values())


class TestSWF:
    def test_round_trip(self):
        jobs = generate_rigid_jobs(15, 8, random_state=5)
        text = jobs_to_swf(jobs, comment="round trip test")
        parsed = swf_to_jobs(text)
        assert len(parsed) == 15
        original = {j.name.split("-")[-1]: j for j in jobs}
        # Runtimes and processor counts survive the round trip.
        durations = sorted(round(j.duration, 4) for j in jobs)
        parsed_durations = sorted(round(j.duration, 4) for j in parsed)
        assert durations == pytest.approx(parsed_durations)
        assert sorted(j.nbproc for j in jobs) == sorted(j.nbproc for j in parsed)

    def test_moldable_jobs_exported_with_min_allocation(self):
        job = MoldableJob(name="m", runtimes=[10.0, 6.0], weight=2.0)
        text = jobs_to_swf([job])
        parsed = swf_to_jobs(text)
        assert parsed[0].nbproc == 1
        assert parsed[0].duration == pytest.approx(10.0)

    def test_comments_and_blank_lines_ignored(self):
        text = "; header\n\n# another comment\n1 0.0 0 5.0 2\n"
        jobs = swf_to_jobs(text)
        assert len(jobs) == 1
        assert jobs[0].nbproc == 2

    def test_negative_runtime_lines_skipped(self):
        text = "1 0.0 0 -1 4\n2 0.0 0 3.0 2\n"
        assert len(swf_to_jobs(text)) == 1

    def test_file_like_input(self):
        text = "1 0.0 0 5.0 2\n"
        assert len(swf_to_jobs(io.StringIO(text))) == 1

    def test_malformed_line_rejected_in_strict_mode(self):
        with pytest.raises(ValueError):
            swf_to_jobs("1 2 3\n", strict=True)

    def test_malformed_line_skipped_by_default(self):
        # Truncated traces are common in the archive; the tolerant default
        # keeps the parsable jobs instead of raising.
        assert swf_to_jobs("1 2 3\n2 0.0 0 3.0 2\n") == swf_to_jobs("2 0.0 0 3.0 2\n")

    def test_unsupported_job_type_rejected(self):
        bag = ParametricSweep(name="s", n_runs=3, run_time=1.0)
        with pytest.raises(TypeError):
            jobs_to_swf([bag])


class TestDiurnalArrivals:
    def test_reproducible_for_a_fixed_seed(self):
        jobs = generate_rigid_jobs(30, 8, random_state=4)
        a = diurnal_arrivals(jobs, mean_interarrival=0.5, random_state=7)
        b = diurnal_arrivals(jobs, mean_interarrival=0.5, random_state=7)
        assert [j.release_date for j in a] == [j.release_date for j in b]

    def test_release_dates_increase_in_name_order(self):
        jobs = generate_rigid_jobs(25, 8, random_state=5)
        released = diurnal_arrivals(jobs, mean_interarrival=1.0, random_state=3)
        dates = [j.release_date for j in released]
        assert dates == sorted(dates)
        assert all(d >= 0 for d in dates)

    def test_arrivals_concentrate_around_the_peak(self):
        import math

        jobs = generate_rigid_jobs(400, 8, random_state=6)
        released = diurnal_arrivals(
            jobs, mean_interarrival=0.25, period=24.0, peak_to_trough=9.0,
            random_state=11,
        )
        # rate(t) ~ 1 + a*sin(2 pi t / 24): the sin>0 half-day is the peak.
        peak = sum(1 for j in released if math.sin(2 * math.pi * j.release_date / 24.0) > 0)
        assert peak > 0.6 * len(released)

    def test_flat_cycle_matches_poisson_style_spread(self):
        jobs = generate_rigid_jobs(50, 8, random_state=7)
        released = diurnal_arrivals(
            jobs, mean_interarrival=1.0, peak_to_trough=1.0, random_state=13
        )
        assert len(released) == 50

    def test_parameter_validation(self):
        jobs = generate_rigid_jobs(3, 4, random_state=8)
        with pytest.raises(ValueError):
            diurnal_arrivals(jobs, mean_interarrival=0.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(jobs, mean_interarrival=1.0, period=-1.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(jobs, mean_interarrival=1.0, peak_to_trough=0.5)

    def test_original_jobs_untouched(self):
        jobs = generate_rigid_jobs(5, 4, random_state=9)
        released = diurnal_arrivals(jobs, mean_interarrival=1.0, random_state=1)
        assert released[0] is not jobs[0]
        assert all(j.release_date == 0.0 for j in jobs)
