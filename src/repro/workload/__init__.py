"""Synthetic workload generation.

The experiments of the paper use synthetic workloads: Figure 2 simulates "a
cluster of 100 machines, parallel and non-parallel jobs", and section 5.2
describes qualitatively the workloads of the CIMENT communities ("the
numerical physicists have long (up to several weeks), sequential jobs to
perform, while the computer scientists' jobs are shorter, focusing mainly on
debug"; "a majority of the jobs submitted in this context are
multi-parametric jobs").

* :mod:`repro.workload.models` -- random rigid / moldable job generators
  (runtime distributions, speedup profiles, weights);
* :mod:`repro.workload.table` -- the struct-of-arrays :class:`JobTable`
  fast path behind the moldable generators (vectorized validation and
  bound columns, object materialization at the runtime boundary);
* :mod:`repro.workload.arrivals` -- arrival processes (Poisson, bursty,
  off-line);
* :mod:`repro.workload.parametric` -- multi-parametric bags of tasks;
* :mod:`repro.workload.communities` -- per-community profiles used by the
  CIMENT grid experiments;
* :mod:`repro.workload.swf` -- a minimal reader/writer for the Standard
  Workload Format so traces can be exchanged with other tools.
"""

from repro.workload.models import (
    WorkloadConfig,
    generate_moldable_jobs,
    generate_rigid_jobs,
    generate_mixed_jobs,
    figure2_workload,
)
from repro.workload.arrivals import (
    poisson_arrivals,
    bursty_arrivals,
    diurnal_arrivals,
    offline_arrivals,
    scaled_load_arrivals,
)
from repro.workload.parametric import generate_parametric_bags
from repro.workload.table import JobTable
from repro.workload.communities import COMMUNITY_PROFILES, community_workload, grid_workload
from repro.workload.swf import SWFHeader, jobs_to_swf, parse_swf_header, swf_to_jobs

__all__ = [
    "WorkloadConfig",
    "generate_moldable_jobs",
    "generate_rigid_jobs",
    "generate_mixed_jobs",
    "figure2_workload",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "offline_arrivals",
    "scaled_load_arrivals",
    "generate_parametric_bags",
    "JobTable",
    "COMMUNITY_PROFILES",
    "community_workload",
    "grid_workload",
    "SWFHeader",
    "jobs_to_swf",
    "parse_swf_header",
    "swf_to_jobs",
]
