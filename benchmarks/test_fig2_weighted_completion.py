"""FIG2-WC: Figure 2 (top) -- sum w_i C_i ratio of the bi-criteria algorithm.

Reproduces the top plot of Figure 2: the ratio of the achieved weighted
completion time to the lower bound, as a function of the number of tasks
(cluster of 100 machines, Parallel and Non Parallel workloads).

Shape assertions (absolute values depend on the unknown workload of the
authors): ratios are bounded by a small constant, they do not grow with the
number of tasks, and for large task counts the Parallel workload achieves a
ratio at least as good as the Non Parallel one.
"""

from __future__ import annotations


from repro.experiments.figure2 import Figure2Config, figure2_curves, run_figure2
from repro.experiments.reporting import ascii_plot, ascii_table

TASK_COUNTS = (50, 100, 200, 400, 700, 1000)

CONFIG = Figure2Config(
    machine_count=100,
    task_counts=TASK_COUNTS,
    repetitions=2,
    base_seed=2004,
    fast_inner=True,
)


def test_figure2_weighted_completion_ratio(run_once, bench_executor, bench_cache, report):
    points = run_once(run_figure2, CONFIG, executor=bench_executor, cache=bench_cache)
    curves = figure2_curves(points)["wici"]

    rows = [
        {"n_tasks": n, "non_parallel": curves["non_parallel"][n], "parallel": curves["parallel"][n]}
        for n in TASK_COUNTS
    ]
    report(
        "Figure 2 (top): sum w_i C_i ratio vs number of tasks (100 machines)",
        ascii_table(rows)
        + "\n"
        + ascii_plot(
            {"parallel": curves["parallel"], "non parallel": curves["non_parallel"]},
            title="WiCi ratio",
            x_label="number of tasks",
        ),
    )

    for family in ("parallel", "non_parallel"):
        curve = curves[family]
        values = [curve[n] for n in TASK_COUNTS]
        # Bounded by a small constant, far below the worst-case guarantee.
        assert all(1.0 - 1e-9 <= v <= 4.0 for v in values), family
        # Ratios flatten: the largest instance is no worse than the smallest.
        assert values[-1] <= values[0] + 0.25, family
    # For large task counts the moldable (Parallel) workload is served at
    # least as well as the sequential one.
    assert curves["parallel"][1000] <= curves["non_parallel"][1000] + 0.5
