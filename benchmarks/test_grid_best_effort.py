"""GRID-BESTEFFORT: the centralized best-effort organisation of section 5.2.

Measures, on a 3-cluster light grid with per-community local workloads and a
stream of multi-parametric grid bags:

* the local-job **non-disturbance invariant** ("local users of the clusters
  will not be disturbed by grid jobs"): local start/completion times are
  identical with and without the grid jobs;
* the grid throughput (best-effort runs completed per unit of time) and the
  kill/resubmission overhead ("since there are a large number of relatively
  small runs, the cost of killing one of them is not too big");
* the utilisation gain brought by filling the holes of the local schedules.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import ascii_table
from repro.platform.generators import homogeneous_cluster
from repro.platform.grid import LightGrid
from repro.simulation.grid_sim import CentralizedGridSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs
from repro.workload.parametric import generate_parametric_bags


def build_grid():
    return LightGrid(
        "best-effort-grid",
        [homogeneous_cluster("alpha", 32, community="alpha-community"),
         homogeneous_cluster("beta", 16, community="beta-community"),
         homogeneous_cluster("gamma", 16, community="gamma-community")],
    )


def build_workload():
    local = {}
    for index, (name, procs) in enumerate((("alpha", 32), ("beta", 16), ("gamma", 16))):
        jobs = generate_moldable_jobs(20, procs, random_state=index,
                                      name_prefix=f"{name}-local")
        local[name] = poisson_arrivals(jobs, rate=1.0, random_state=index)
    bags = generate_parametric_bags(4, runs_range=(200, 400), run_time_range=(0.2, 0.5),
                                    random_state=9)
    return local, bags


def run_both():
    grid = build_grid()
    local, bags = build_workload()
    with_grid = CentralizedGridSimulator(grid, local_policy="backfill").run(local, bags)
    without_grid = CentralizedGridSimulator(grid, local_policy="backfill",
                                            best_effort_enabled=False).run(local, [])
    return grid, bags, with_grid, without_grid


def test_centralized_best_effort_grid(run_once, report):
    grid, bags, with_grid, without_grid = run_once(run_both)

    rows = []
    for cluster in grid:
        rows.append(
            {
                "cluster": cluster.name,
                "util_without_grid": without_grid.utilization[cluster.name],
                "util_with_grid": with_grid.utilization[cluster.name],
                "local_makespan": with_grid.local_criteria[cluster.name].makespan,
            }
        )
    summary = (
        f"best-effort runs: {with_grid.total_runs_completed} / "
        f"{sum(b.n_runs for b in bags)} completed, kills: {with_grid.kills}, "
        f"grid throughput: {with_grid.grid_throughput():.2f} runs per time unit"
    )
    report("GRID-BESTEFFORT: centralized organisation", ascii_table(rows) + "\n" + summary)

    # Non-disturbance invariant: identical local schedules with and without grid jobs.
    for cluster in grid:
        for entry in without_grid.local_schedules[cluster.name]:
            other = with_grid.local_schedules[cluster.name][entry.job.name]
            assert other.start == pytest.approx(entry.start)
            assert other.completion == pytest.approx(entry.completion)
    # All grid work eventually completes despite the kills.
    assert with_grid.total_runs_completed == sum(b.n_runs for b in bags)
    assert with_grid.launches == with_grid.total_runs_completed + with_grid.kills
    # Filling the holes increases utilisation on every cluster.
    for row in rows:
        assert row["util_with_grid"] >= row["util_without_grid"] - 1e-9
    assert sum(r["util_with_grid"] for r in rows) > sum(r["util_without_grid"] for r in rows)
