"""The Gantt explorer: record rendering and trace-to-schedule conversion."""

from __future__ import annotations

import pytest

from repro.dashboard.gantt import (
    CATEGORICAL,
    FOLD_COLOR,
    _contiguous_groups,
    cluster_color,
    render_gantt_svg,
    render_scenario_gantt,
    schedule_from_trace,
)
from repro.scenarios import registry
from repro.scenarios.composer import RECORD_MODELS, build_simulation_record
from repro.simulation.tracing import Trace


class TestHelpers:
    def test_contiguous_processor_indices_merge_into_rects(self):
        assert _contiguous_groups([0, 1, 2, 5, 7, 8]) == [(0, 3), (5, 1), (7, 2)]
        assert _contiguous_groups([3, 1, 2]) == [(1, 3)]
        assert _contiguous_groups([]) == []

    def test_cluster_colors_fold_past_the_fixed_slots(self):
        assert [cluster_color(i) for i in range(8)] == list(CATEGORICAL)
        assert cluster_color(8) == FOLD_COLOR
        assert cluster_color(23) == FOLD_COLOR


class TestScheduleFromTrace:
    def test_round_trip_from_simulator_trace(self):
        record = build_simulation_record(registry.get("cluster.policy-panel"))
        schedule = schedule_from_trace(record.trace, record.machine_count)
        assert len(schedule) == len(record.trace.events("complete"))
        schedule.validate(check_release_dates=False)

    def test_killed_and_resubmitted_jobs_get_suffixed_names(self):
        trace = Trace()
        trace.record(0.0, "start", "run", cluster="c", processors=(0,))
        trace.record(1.0, "kill", "run", cluster="c")
        trace.record(2.0, "start", "run", cluster="c", processors=(1,))
        trace.record(3.0, "complete", "run", cluster="c")
        schedule = schedule_from_trace(trace, 2)
        assert sorted(entry.job.name for entry in schedule) == ["run", "run#2"]

    def test_starts_without_processors_are_skipped(self):
        trace = Trace()
        trace.record(0.0, "start", "ghost", cluster="c")
        trace.record(1.0, "complete", "ghost", cluster="c")
        assert len(schedule_from_trace(trace, 4)) == 0


class TestRenderers:
    @pytest.mark.parametrize("scenario", [
        "cluster.policy-panel",          # cluster-online
        "grid.decentralized.exchange",   # grid-decentralized
    ])
    def test_record_models_render_standalone_svg(self, scenario):
        svg = render_scenario_gantt(scenario)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<title>" in svg  # hover tooltips on run rectangles

    def test_best_effort_runs_are_hatched(self):
        record = build_simulation_record(registry.get("fig3.ciment.centralized"))
        assert any(run.kind == "best-effort" for run in record.runs())
        svg = render_gantt_svg(record, title="t")
        assert "url(#hatch" in svg

    def test_non_record_models_raise_spec_error(self):
        from repro.scenarios.spec import SpecError

        spec = registry.get("fig2.bicriteria")
        assert spec.model not in RECORD_MODELS
        with pytest.raises(SpecError, match="no\\s+SimulationRecord|produces no"):
            build_simulation_record(spec)

    def test_seed_changes_the_rendered_schedule(self):
        first = render_scenario_gantt("cluster.policy-panel", seed=1)
        second = render_scenario_gantt("cluster.policy-panel", seed=2)
        assert first != second
