"""Divisible Load Theory (DLT) algorithms (section 2.1 of the paper).

A Divisible Load Task is "a (usually large) set of computations that can be
partitioned in every possible way, each part being completely independent of
the other parts".  The scheduling difficulty "lies in the distribution of the
task to the available processors.  This distribution can be made in one,
several rounds or dynamically with a work stealing strategy".

* :mod:`repro.core.dlt.bus` -- single-round distribution over a shared bus
  ("simple problems as the single round distribution on processors connected
  by a common bus are polynomial": the closed form is implemented here);
* :mod:`repro.core.dlt.star` -- single-round distribution on a heterogeneous
  star (one-port master, per-worker bandwidths and latencies);
* :mod:`repro.core.dlt.multiround` -- multi-round distributions that overlap
  communication and computation;
* :mod:`repro.core.dlt.steady_state` -- asymptotic throughput ("the theory of
  asymptotic behavior shows that optimal solutions can be computed in
  polynomial time", section 5.2);
* :mod:`repro.core.dlt.workstealing` -- dynamic distribution with a
  work-stealing strategy.
"""

from repro.core.dlt.platform import DLTWorker, DLTPlatform
from repro.core.dlt.bus import bus_single_round, BusDistribution
from repro.core.dlt.star import star_single_round, StarDistribution
from repro.core.dlt.multiround import multi_round_distribution, MultiRoundResult, optimize_round_count
from repro.core.dlt.steady_state import steady_state_throughput, SteadyStateSolution
from repro.core.dlt.workstealing import work_stealing_distribution, WorkStealingResult

__all__ = [
    "DLTWorker",
    "DLTPlatform",
    "bus_single_round",
    "BusDistribution",
    "star_single_round",
    "StarDistribution",
    "multi_round_distribution",
    "MultiRoundResult",
    "optimize_round_count",
    "steady_state_throughput",
    "SteadyStateSolution",
    "work_stealing_distribution",
    "WorkStealingResult",
]
