"""The unified results API: one protocol for every row producer.

Historically the repository persisted sweep rows through three unrelated
code paths -- the on-disk :class:`~repro.experiments.cache.ResultCache`,
the distributed :class:`~repro.distributed.campaign.CampaignJournal` and
ad-hoc ``reporting.to_csv`` calls -- each with its own encoding.  This
module defines the single contract they all speak now:

* :class:`RowSink` -- anything that accepts completed cells.  The harness
  (:func:`repro.experiments.harness.run_experiment`) streams every finished
  cell into its ``sink=``, whatever executor produced it (serial, pool,
  ``tcp://``, ``inproc://``).
* :class:`RowSource` -- anything that can replay a previously persisted
  cell, keyed by :func:`repro.experiments.grid.cell_key` plus the run
  fingerprint, exactly like the cache and the journal.
* :func:`write_rows` -- the one export entry point behind every CLI
  ``--out`` flag: CSV, JSONL or Parquet, inferred from the file suffix.

All three row stores (cache, journal and the columnar
:class:`~repro.store.columnar.CampaignStore`) implement both protocols and
share the :func:`~repro.experiments.cache.encode_replayable` /
:func:`~repro.experiments.cache.decode_replayed` codec, so a row replayed
from any of them is bit-identical to a freshly computed one.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.experiments.grid import Cell, CellOutcome

try:  # typing.Protocol: py >= 3.8, runtime_checkable for isinstance tests
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - very old interpreters
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


class StoreUnavailableError(RuntimeError):
    """An operation needs an optional analytics dependency that is absent.

    Raised instead of a bare ``ImportError`` so the message can say *what to
    install* (``pip install 'repro-dutot-emt04[analytics]'``) and callers can
    catch one exception type for every missing-backend case.
    """

    def __init__(self, feature: str, dependency: str) -> None:
        super().__init__(
            f"{feature} needs the optional dependency {dependency!r}; "
            f"install the analytics extra: pip install 'repro-dutot-emt04[analytics]'"
        )
        self.dependency = dependency


@runtime_checkable
class RowSink(Protocol):
    """Accepts completed sweep cells; the write half of the results API."""

    def write(self, experiment: str, cell: Cell, outcome: CellOutcome, version: str = "") -> bool:
        """Persist one completed cell; False when the outcome is not persistable."""
        ...

    def flush(self) -> None:
        """Make every accepted cell durable (no-op for line-buffered sinks)."""
        ...


@runtime_checkable
class RowSource(Protocol):
    """Replays persisted cells; the read half of the results API."""

    def replay(self, experiment: str, cell: Cell, version: str = "") -> Optional[CellOutcome]:
        """The persisted outcome of ``cell`` (``cached=True``), or ``None``."""
        ...


def compose_row(experiment: str, cell: Cell, outcome: CellOutcome) -> Dict[str, Any]:
    """The flat result row of one completed cell.

    The single definition of a row's shape and key order -- experiment,
    seed, sweep parameters, then metrics -- shared by the harness and every
    store, so re-exported rows are bit-identical to streamed ones.
    """

    row: Dict[str, Any] = {"experiment": experiment, "seed": cell.seed}
    row.update(cell.params_dict)
    row.update(outcome.metrics or {})
    return row


def json_stable(value: Any) -> bool:
    """True when ``value`` survives a JSON round-trip unchanged."""

    try:
        return json.loads(json.dumps(value)) == value
    except (TypeError, ValueError):
        return False


def coerce_sink(sink: Union[None, str, Path, RowSink]) -> Optional[RowSink]:
    """Accept a sink object or a store directory path (coerced to a store)."""

    if sink is None or isinstance(sink, RowSink):
        return sink
    from repro.store.columnar import CampaignStore

    return CampaignStore(sink)


# ---------------------------------------------------------------------------
# write_rows: the one export entry point (--out on every CLI)
# ---------------------------------------------------------------------------

#: Formats accepted by :func:`write_rows` / the CLIs' ``--format`` flags.
FORMATS = ("csv", "jsonl", "parquet")

_SUFFIXES = {
    ".csv": "csv",
    ".jsonl": "jsonl",
    ".ndjson": "jsonl",
    ".parquet": "parquet",
    ".pq": "parquet",
}


def infer_format(path: Union[str, Path], fmt: Optional[str] = None) -> str:
    """Resolve an export format from an explicit flag or the file suffix."""

    if fmt is not None:
        if fmt not in FORMATS:
            raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
        return fmt
    suffix = Path(path).suffix.lower()
    resolved = _SUFFIXES.get(suffix)
    if resolved is None:
        raise ValueError(
            f"cannot infer a format from {str(path)!r} (suffix {suffix!r}); "
            f"use a {'/'.join(sorted(set(_SUFFIXES)))} suffix or pass --format"
        )
    return resolved


def union_columns(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Union of every row's keys, in first-seen order (heterogeneous sweeps)."""

    columns: List[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    return columns


def _rows_to_jsonl(rows: Sequence[Mapping[str, Any]]) -> str:
    return "".join(json.dumps(dict(row), default=repr) + "\n" for row in rows)


def _write_parquet(rows: Sequence[Mapping[str, Any]], path: Path,
                   columns: Sequence[str]) -> None:
    try:
        import pyarrow as pa
        import pyarrow.parquet as pq
    except ImportError:
        raise StoreUnavailableError("parquet export", "pyarrow") from None
    from repro.store.columnar import normalize_columns

    flat = [
        {column: row.get(column) for column in columns}
        for row in rows
    ]
    table = pa.Table.from_pylist(normalize_columns(flat, columns))
    pq.write_table(table, str(path))


def write_rows(
    rows: Sequence[Mapping[str, Any]],
    path: Union[str, Path],
    *,
    fmt: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write result rows to ``path`` as CSV, JSONL or Parquet.

    The format is taken from ``fmt`` when given, otherwise inferred from the
    file suffix.  Columns default to the union of every row's keys in
    first-seen order.  Returns the path written.
    """

    from repro.experiments.reporting import to_csv

    path = Path(path)
    resolved = infer_format(path, fmt)
    if columns is None:
        columns = union_columns(rows)
    path.parent.mkdir(parents=True, exist_ok=True)
    if resolved == "csv":
        path.write_text(to_csv(rows, columns=columns), encoding="utf-8")
    elif resolved == "jsonl":
        path.write_text(_rows_to_jsonl(rows), encoding="utf-8")
    else:
        _write_parquet(rows, path, columns)
    return path


def read_rows(path: Union[str, Path], *, fmt: Optional[str] = None) -> List[Dict[str, Any]]:
    """Read back rows written by :func:`write_rows` (tests, round-trips)."""

    path = Path(path)
    resolved = infer_format(path, fmt)
    if resolved == "jsonl":
        return [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
    if resolved == "parquet":
        try:
            import pyarrow.parquet as pq
        except ImportError:
            raise StoreUnavailableError("parquet import", "pyarrow") from None
        return pq.read_table(str(path)).to_pylist()
    import csv as _csv
    import io

    with io.StringIO(path.read_text(encoding="utf-8")) as handle:
        return [dict(row) for row in _csv.DictReader(handle)]


def store_trace(
    trace: Any,
    store: Any,
    *,
    scenario: str,
    label: str = "",
    campaign: Optional[str] = None,
) -> int:
    """Land a simulation trace in a campaign store, next to result rows.

    Each :class:`~repro.simulation.tracing.TraceEvent` becomes one flat row
    (:meth:`Trace.flat_records` shape) in a ``trace.<scenario>`` partition,
    so SQL analytics can join schedules against the result rows of the same
    campaign.  ``store`` is a :class:`~repro.store.columnar.CampaignStore`
    or a store directory path; ``label`` distinguishes multiple traces of
    one scenario (e.g. a policy or seed tag).  Row keys are explicit
    (position-based) because identical events are legitimate in a trace and
    must not be deduplicated away.  Returns the number of rows written.
    """

    from repro.store.columnar import CampaignStore

    target = store if hasattr(store, "append_row") else CampaignStore(store)
    rows = trace.flat_records()
    for index, row in enumerate(rows):
        target.append_row(
            row,
            scenario=f"trace.{scenario}",
            key=f"trace:{scenario}:{label}:{index}",
            campaign=campaign,
            fingerprint=label or "trace",
        )
    target.flush()
    return len(rows)


def deprecated_csv_flag(csv_path: Optional[Path]) -> Optional[Path]:
    """Handle a legacy ``--csv PATH`` flag: warn once, return it as ``--out``."""

    if csv_path is not None:
        warnings.warn(
            "--csv is deprecated; use --out PATH (format inferred from the "
            "suffix, or forced with --format csv)",
            DeprecationWarning,
            stacklevel=2,
        )
    return csv_path


def iter_source_rows(source: Any) -> Iterator[Dict[str, Any]]:
    """Iterate the decoded rows of any store exposing ``rows()`` (sugar)."""

    return iter(source.rows())
