"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one artifact of the paper (a figure, a platform
description, or a stated performance ratio), prints the reproduced rows /
curves with the reporting helpers, and asserts the *shape* that must hold
(who wins, by roughly what factor) -- not the absolute numbers, which depend
on the authors' unknown workload distributions.

Run with ``pytest benchmarks``.  The sweeps go through the parallel
experiment harness: set ``REPRO_JOBS=N`` to fan the (config, seed) cells out
to ``N`` worker processes, or ``REPRO_JOBS=tcp://host:port`` to schedule
them onto distributed workers (results are identical to a serial run either
way), and set ``REPRO_CACHE_DIR=<dir>`` to skip cells already computed by a
previous invocation.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the benchmarks without an installed distribution, exactly like
# the pythonpath pytest option does for tests/.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments.cache import ResultCache          # noqa: E402
from repro.experiments.executors import resolve_executor  # noqa: E402
from repro.experiments.harness import run_experiment      # noqa: E402
from repro.scenarios import run_scenario                  # noqa: E402


@pytest.fixture(scope="session")
def bench_executor():
    """Executor shared by every benchmark sweep (selected by REPRO_JOBS)."""

    return resolve_executor(None)


@pytest.fixture(scope="session")
def bench_cache():
    """On-disk cell cache, enabled by setting REPRO_CACHE_DIR."""

    return ResultCache.from_env()


@pytest.fixture
def run_once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def run_sweep(run_once, bench_executor, bench_cache):
    """Run a parameter sweep through the harness, timed by pytest-benchmark.

    ``run_sweep(name, run, parameters, repetitions=..., base_seed=...)``
    returns the :class:`~repro.experiments.harness.ExperimentResult`; the
    executor and cache come from the session fixtures above.
    """

    def _run(name, run, parameters=None, *, repetitions=1, base_seed=1234, **kwargs):
        return run_once(
            run_experiment,
            name,
            run,
            parameters,
            repetitions=repetitions,
            base_seed=base_seed,
            executor=bench_executor,
            cache=bench_cache,
            **kwargs,
        )

    return _run


@pytest.fixture
def run_scenario_sweep(run_once, bench_executor, bench_cache):
    """Run a registered (or derived) :class:`ScenarioSpec` through the harness.

    ``run_scenario_sweep(spec, **kwargs)`` forwards to
    :func:`repro.scenarios.run_scenario` with the session executor and
    cache, timed by pytest-benchmark like every other sweep.
    """

    def _run(spec, **kwargs):
        return run_once(
            run_scenario, spec, executor=bench_executor, cache=bench_cache, **kwargs
        )

    return _run


@pytest.fixture
def report(capsys):
    """Print a report block that survives pytest's output capture."""

    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n===== {title} =====")
            print(body)

    return _print
