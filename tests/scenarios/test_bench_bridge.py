"""The scenario -> repro.bench bridge."""

from __future__ import annotations

import pytest

from repro.bench.cases import REGISTRY as BENCH_REGISTRY
from repro.bench.runner import time_case
from repro.scenarios import get, run_scenario, rows_digest
from repro.scenarios.bench import PREFIX, register_scenario_benchmarks


@pytest.fixture
def scenario_case():
    name = "mix.rigid-moldable"
    (case,) = register_scenario_benchmarks([name])
    yield name, case
    BENCH_REGISTRY.pop(f"{PREFIX}{name}", None)


def test_registration_is_idempotent(scenario_case):
    name, case = scenario_case
    (again,) = register_scenario_benchmarks([name])
    assert again is case
    assert f"{PREFIX}{name}" in BENCH_REGISTRY


def test_quick_tier_is_the_smoke_sweep_with_matching_digest(scenario_case):
    name, case = scenario_case
    result = time_case(case, "quick", repeats=1, warmup=0)
    smoke = run_scenario(get(name), smoke=True)
    assert result.cells == len(smoke.rows)
    # The bench payload is the scenario's row list: identical rows, so the
    # bench digest tracks the same determinism the scenario digest does.
    rerun = time_case(case, "quick", repeats=1, warmup=0)
    assert result.digest == rerun.digest
    assert rows_digest(smoke.rows) == rows_digest(run_scenario(get(name), smoke=True).rows)


def test_full_tier_uses_the_full_sweep(scenario_case):
    name, case = scenario_case
    outcome = case.run_tier("full")
    full = run_scenario(get(name))
    assert outcome.cells == len(full.rows)
