"""The CIMENT / CiGri platform (Figure 3 of the paper).

Figure 3 shows "the 4 largest clusters of the CIMENT project":

* 104 bi-Itanium 2 nodes connected by Myrinet,
* 48 bi-P4 Xeon nodes connected by Gigabit Ethernet,
* 40 bi-Athlon nodes connected by 100 Mb Ethernet,
* 24 bi-Athlon nodes connected by 100 Mb Ethernet,

all reachable from a set of submission queues.  The whole CIMENT project
"gathered more than 500 machines" (600 in the abstract) across the academic
computing resources of Grenoble; the four clusters above are the ones
modelled explicitly here, the remaining machines can be added through the
``extra_workstations`` parameter as a fifth, loosely-coupled pool (global
computing style).

Relative speeds are rough estimates of the 2003-era hardware (the experiments
only depend on their ratios): Itanium 2 nodes are the fastest, the Athlon
clusters the slowest.  Each node is a bi-processor (2 cores).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.platform.cluster import Cluster, Interconnect
from repro.platform.grid import GridLink, LightGrid
from repro.platform.machine import Machine

#: Static description of the four clusters of Figure 3:
#: (name, node count, cores per node, relative speed, interconnect name,
#:  bandwidth, community)
CIMENT_CLUSTERS: Tuple[Tuple[str, int, int, float, str, float, str], ...] = (
    ("icluster-itanium", 104, 2, 1.30, "myrinet", 2000.0, "computer-science"),
    ("xeon-cluster", 48, 2, 1.00, "gigabit-ethernet", 1000.0, "numerical-physics"),
    ("athlon-cluster-a", 40, 2, 0.75, "ethernet-100", 100.0, "astrophysics"),
    ("athlon-cluster-b", 24, 2, 0.75, "ethernet-100", 100.0, "medical-research"),
)


def _build_cluster(
    name: str,
    nodes: int,
    cores: int,
    speed: float,
    interconnect_name: str,
    bandwidth: float,
    community: str,
) -> Cluster:
    machines = [
        Machine(name=f"{name}-{i:03d}", speed=speed, cores=cores) for i in range(nodes)
    ]
    return Cluster(
        name,
        machines,
        Interconnect(name=interconnect_name, bandwidth=bandwidth, latency=1e-4),
        community=community,
    )


def ciment_grid(
    *,
    extra_workstations: int = 0,
    workstation_speed: float = 0.5,
) -> LightGrid:
    """Build the CIMENT light grid of Figure 3.

    Parameters
    ----------
    extra_workstations:
        Number of additional desktop machines to add as a fifth
        ``"workstation-pool"`` cluster, to approach the "more than 600
        machines" of the CiGri project.  0 (the default) reproduces exactly
        the four clusters of Figure 3 (216 nodes, 432 processors).
    workstation_speed:
        Relative speed of the extra workstations.
    """

    clusters: List[Cluster] = [
        _build_cluster(*spec) for spec in CIMENT_CLUSTERS
    ]
    if extra_workstations > 0:
        machines = [
            Machine(name=f"workstation-{i:03d}", speed=workstation_speed, cores=1)
            for i in range(extra_workstations)
        ]
        clusters.append(
            Cluster(
                "workstation-pool",
                machines,
                Interconnect(name="campus-ethernet", bandwidth=10.0, latency=1e-3),
                community="global-computing",
            )
        )
    # Wide-area links: the clusters are on the same campus-area network,
    # modelled as pairwise links of identical capacity.
    names = [c.name for c in clusters]
    links = [
        GridLink(a, b, bandwidth=100.0, latency=1e-3)
        for i, a in enumerate(names)
        for b in names[i + 1 :]
    ]
    return LightGrid("ciment", clusters, links)


def ciment_processor_counts() -> Dict[str, int]:
    """Processor count of each Figure-3 cluster (documentation helper)."""

    return {spec[0]: spec[1] * spec[2] for spec in CIMENT_CLUSTERS}
