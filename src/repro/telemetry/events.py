"""Topic names and versioned payload construction for the telemetry bus.

Every payload published on the bus is a flat, JSON-safe ``dict`` carrying a
``schema_version`` and a ``kind``; consumers (dashboard endpoints, the store,
tests) dispatch on ``kind`` and may reject versions they do not understand.
Bumping :data:`SCHEMA_VERSION` is an API change: document it in CHANGES.md
and keep the dashboard able to render the previous version.
"""

from __future__ import annotations

from typing import Any, Dict

#: Version stamped into every event payload and every bus snapshot.
SCHEMA_VERSION = 1

# -- topics -----------------------------------------------------------------
#: Sweep-harness cell lifecycle (sweep-start/cell-start/cell-row/cell-error/
#: sweep-end), published by :func:`repro.experiments.harness.run_experiment`.
TOPIC_SWEEP = "sweep"
#: Campaign lifecycle of the distributed scheduler (campaign-start/-end).
TOPIC_SCHEDULER = "scheduler"
#: Worker membership: worker-joined / worker-evicted / worker-left.
TOPIC_WORKERS = "scheduler.workers"
#: Cell assignments, steals and speculative duplicates.
TOPIC_ASSIGNMENTS = "scheduler.assignments"
#: Compact queue-depth samples (pending/running/done) for timelines.
TOPIC_QUEUE = "scheduler.queue"
#: Full :meth:`SchedulerStats.to_payload` snapshots.
TOPIC_STATS = "scheduler.stats"
#: Simulator trace events forwarded through the trace tap.
TOPIC_TRACE = "trace"
#: Scheduling-runtime run lifecycle (run-start / run-end).
TOPIC_RUNTIME = "runtime"
#: Monotonic-clock span / counter / histogram samples from the sweep harness
#: and (locally, before forwarding) from distributed workers.
TOPIC_SPANS = "spans"
#: Scheduler event-loop spans: assign latency, steal round-trips, loop lag.
TOPIC_SCHEDULER_SPANS = "scheduler.spans"

#: Prefix under which the scheduler re-publishes events forwarded by a
#: worker: ``worker.<worker_id>.<original topic>``.
WORKER_TOPIC_PREFIX = "worker."

ALL_TOPICS = (
    TOPIC_SWEEP,
    TOPIC_SCHEDULER,
    TOPIC_WORKERS,
    TOPIC_ASSIGNMENTS,
    TOPIC_QUEUE,
    TOPIC_STATS,
    TOPIC_TRACE,
    TOPIC_RUNTIME,
    TOPIC_SPANS,
    TOPIC_SCHEDULER_SPANS,
)


def worker_topic(worker_id: str, topic: str) -> str:
    """The scheduler-side topic for ``topic`` forwarded by ``worker_id``."""

    return f"{WORKER_TOPIC_PREFIX}{worker_id}.{topic}"


def payload(kind: str, **fields: Any) -> Dict[str, Any]:
    """A versioned event payload: ``schema_version`` + ``kind`` + fields."""

    body: Dict[str, Any] = {"schema_version": SCHEMA_VERSION, "kind": kind}
    body.update(fields)
    return body
