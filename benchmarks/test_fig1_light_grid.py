"""FIG1-GRID: Figure 1 -- "A light grid".

Figure 1 is an architecture sketch: a few clusters in the same geographical
area, each with its own submission queue, connected by a campus network.  The
benchmark builds a random light grid with the structure of the figure (highly
heterogeneous between clusters, weakly heterogeneous inside), runs a mixed
local + grid workload through the centralized simulator and reports the
per-cluster utilisation -- the quantity the light-grid design is meant to
improve ("leading to an overall better use of these resources").  The
simulation runs as one cell of the parallel sweep harness: the returned
metrics are flat (and JSON-serialisable, so the cell caches) rather than the
raw simulator objects.
"""

from __future__ import annotations


from repro.experiments.reporting import ascii_table
from repro.platform.generators import random_light_grid
from repro.simulation.grid_sim import CentralizedGridSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs
from repro.workload.parametric import generate_parametric_bags


def run_fig1_cell(seed):
    """Build the light grid, simulate, and flatten the outcome to metrics."""

    grid = random_light_grid(n_clusters=3, nodes_range=(20, 60), cores_per_node=2,
                             random_state=1, name="figure1-light-grid")
    local = {}
    for index, cluster in enumerate(grid):
        jobs = generate_moldable_jobs(15, cluster.processor_count,
                                      random_state=100 + index,
                                      name_prefix=f"{cluster.name}-job")
        local[cluster.name] = poisson_arrivals(jobs, rate=2.0, random_state=200 + index)
    bags = generate_parametric_bags(2, runs_range=(100, 200), run_time_range=(0.2, 0.5),
                                    random_state=3)
    simulator = CentralizedGridSimulator(grid, local_policy="backfill")
    result = simulator.run(local, bags)
    return {
        "clusters": [
            {
                "cluster": cluster.name,
                "nodes": cluster.node_count,
                "processors": cluster.processor_count,
                "interconnect": cluster.interconnect.name,
                "utilization": result.utilization[cluster.name],
                "local_makespan": result.local_criteria[cluster.name].makespan,
            }
            for cluster in grid
        ],
        "n_clusters": len(grid),
        "grid_processors": grid.processor_count,
        "runs_completed": dict(result.runs_completed),
        "total_runs_completed": result.total_runs_completed,
        "grid_summary": grid.summary(),
    }


def test_figure1_light_grid_structure_and_utilization(run_sweep, report):
    result = run_sweep("fig1-light-grid", run_fig1_cell)
    row = result.rows[0]
    cluster_rows = row["clusters"]

    report("Figure 1: a light grid (3 clusters + submission queues)",
           row["grid_summary"] + "\n\n" + ascii_table(cluster_rows))

    # Structure of Figure 1: a few clusters, each with its own queue.
    assert 2 <= row["n_clusters"] <= 5
    assert row["grid_processors"] == sum(c["processors"] for c in cluster_rows)
    # Every local workload completed and the grid bags were executed.
    assert row["total_runs_completed"] == sum(row["runs_completed"].values())
    assert all(row["runs_completed"].values())
    # Best-effort filling keeps the clusters busy without disturbing local jobs.
    assert all(0.0 < c["utilization"] <= 1.0 + 1e-9 for c in cluster_rows)
