"""RATIO-MRT: empirical verification of the 3/2 + eps ratio of section 4.1.

The MRT dual-approximation algorithm for off-line moldable makespan has a
proven performance ratio of 3/2 + eps.  The benchmark runs it on random
moldable instances at the scales of the paper's setting (up to the 100-machine
cluster of Figure 2), reports the observed ratios against the lower bound and
compares with the greedy allocate-then-pack baseline.  The (machines, jobs)
grid goes through the parallel sweep harness (see benchmarks/conftest.py).
"""

from __future__ import annotations


from repro.core.bounds import makespan_lower_bound, performance_ratio
from repro.core.criteria import makespan
from repro.core.policies.mrt import GreedyMoldableScheduler, MRTScheduler
from repro.experiments.ratio_checks import check_mrt_ratio
from repro.experiments.reporting import ascii_table
from repro.workload.models import generate_moldable_jobs

EPSILON = 0.05
MACHINE_COUNTS = (16, 64, 100)
JOB_COUNTS = (20, 60, 120)


def run_mrt_cell(seed, machines, jobs):
    """One sweep cell: both schedulers on one random instance."""

    # The instance is keyed on the grid point (historical convention), so the
    # reproduced ratios match the original serial benchmark exactly.
    workload = generate_moldable_jobs(jobs, machines, random_state=jobs + machines)
    bound = makespan_lower_bound(workload, machines)
    mrt_schedule = MRTScheduler(epsilon=EPSILON).schedule(workload, machines)
    greedy_schedule = GreedyMoldableScheduler().schedule(workload, machines)
    mrt_schedule.validate()
    return {
        "mrt_ratio": performance_ratio(makespan(mrt_schedule), bound),
        "greedy_ratio": performance_ratio(makespan(greedy_schedule), bound),
    }


def test_mrt_offline_ratio(run_sweep, report):
    result = run_sweep("ratio-mrt", run_mrt_cell,
                       {"machines": MACHINE_COUNTS, "jobs": JOB_COUNTS})
    rows = result.rows
    report("RATIO-MRT: off-line moldable makespan (stated bound 3/2 + eps)",
           ascii_table(rows))

    worst = max(row["mrt_ratio"] for row in rows)
    # Observed worst case of this implementation.  The stated bound of the
    # original algorithm is 3/2 + eps; the pragmatic acceptance test used here
    # (LPT packing of the knapsack allocations, see repro.core.policies.mrt
    # and EXPERIMENTS.md) keeps most instances below it but can reach ~1.75 on
    # area-dominated instances.
    assert worst <= 1.75 + 1e-9
    mean = sum(row["mrt_ratio"] for row in rows) / len(rows)
    assert mean <= 1.5 + EPSILON + 1e-9
    # And MRT never loses to the greedy baseline.
    for row in rows:
        assert row["mrt_ratio"] <= row["greedy_ratio"] + 1e-9


def test_mrt_ratio_check_helper(run_once, report):
    check = run_once(check_mrt_ratio, machine_count=100, job_counts=(40, 120), repetitions=2,
                     epsilon=EPSILON)
    report("RATIO-MRT (experiment helper)", ascii_table([check.as_dict()]))
    assert check.worst_ratio <= 2.0
    assert check.mean_ratio >= 1.0 - 1e-9
