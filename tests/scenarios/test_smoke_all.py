"""Every registered scenario must smoke-run, deterministically.

This is the in-repo twin of the CI ``scenario-smoke`` job: a scenario that
registers but cannot execute its smoke tier end-to-end -- or that produces
different rows for the same seed -- fails here, before it ever reaches CI.
"""

from __future__ import annotations

import pytest

from repro.scenarios import all_specs, get, names, run_scenario, rows_digest


def test_at_least_ten_scenarios_registered():
    assert len(names()) >= 10


def test_every_scenario_declares_a_smoke_tier():
    for spec in all_specs():
        smoke = spec.smoke_spec()
        cells = smoke.repetitions
        for values in smoke.sweep.values():
            cells *= len(values)
        # Smoke tiers must stay tiny: they run on every CI push.
        assert 1 <= cells <= 8, (
            f"{spec.name}: smoke tier expands to {cells} cells; keep it <= 8"
        )


@pytest.mark.parametrize("name", names())
def test_scenario_smoke_runs_deterministically(name):
    spec = get(name)
    first = run_scenario(spec, smoke=True)
    second = run_scenario(spec, smoke=True)
    assert len(first.rows) > 0, f"{name}: smoke tier produced no rows"
    assert not first.errors
    digest_a, digest_b = rows_digest(first.rows), rows_digest(second.rows)
    assert digest_a == digest_b, (
        f"{name}: same seed produced different rows ({digest_a[:12]} vs {digest_b[:12]})"
    )
