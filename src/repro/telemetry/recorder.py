"""Flight recorder: land every telemetry bus event in a CampaignStore.

:class:`TelemetryRecorder` subscribes to a bus and drains the subscription
from a background daemon thread into ``telemetry.<campaign>`` partitions of
a :class:`~repro.store.columnar.CampaignStore` — the same Parquet/JSONL
store result rows land in, so "where did the milliseconds go" is a named
query (``span-summary`` / ``worker-occupancy`` / ``phase-attribution`` in
:mod:`repro.store.queries`) instead of a log grep.

Design constraints mirror the bus's own:

* **Never perturb the run.**  The recorder is a consumer like any other:
  bounded subscription buffer (the bus drops oldest events for it rather
  than blocking a producer), writes on its own thread, and a store that
  buffers + flushes in batches.
* **Survive replays.**  Every event row gets an explicit position key
  ``telemetry:<token>:<topic>:<seq>`` (token unique per recorder start), so
  the store's ``(campaign, key)`` dedup never collapses two runs' events.
* **Rows are flat.**  ``topic`` / ``seq`` / ``gseq`` / ``time`` plus the
  payload fields, ready for scalar-column promotion; anything non-scalar
  stays queryable in ``row_json``.
"""

from __future__ import annotations

import threading
import uuid
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.telemetry.bus import TelemetryBus, get_bus

#: Scenario prefix flight-recorder partitions land under.
TELEMETRY_SCENARIO_PREFIX = "telemetry."

#: Fingerprint label separating telemetry partitions from result partitions.
TELEMETRY_FINGERPRINT = "telemetry"


def telemetry_scenario(campaign: str) -> str:
    """Partition scenario label for a recorded campaign."""

    return f"{TELEMETRY_SCENARIO_PREFIX}{campaign}"


class TelemetryRecorder:
    """Record bus events into ``telemetry.<campaign>`` store partitions.

    ::

        store = CampaignStore("runs/store", campaign="fleet")
        with TelemetryRecorder(store):
            run_scenario(spec, executor=executor)   # events land as rows

    ``store`` may be a :class:`CampaignStore` or a path (a store is opened
    with ``campaign=campaign or "telemetry"``).  Use as a context manager,
    or call :meth:`start` / :meth:`stop` explicitly; ``stop`` drains the
    subscription one last time and flushes the store.
    """

    def __init__(
        self,
        store: Union[str, Path, Any],
        *,
        bus: Optional[TelemetryBus] = None,
        campaign: Optional[str] = None,
        interval: float = 0.2,
        buffer: int = 65536,
    ) -> None:
        if isinstance(store, (str, Path)):
            from repro.store.columnar import CampaignStore

            store = CampaignStore(store, campaign=campaign or "telemetry")
        self.store = store
        self.bus = bus if bus is not None else get_bus()
        self.campaign = campaign or getattr(store, "campaign", "telemetry")
        self.scenario = telemetry_scenario(self.campaign)
        self.interval = interval
        self.buffer = buffer
        self.recorded = 0
        self.skipped = 0
        self._token = ""
        self._subscription = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "TelemetryRecorder":
        if self._thread is not None:
            raise RuntimeError("TelemetryRecorder already started")
        self._token = uuid.uuid4().hex[:8]
        self._stop.clear()
        self._subscription = self.bus.subscribe(buffer=self.buffer)
        self._thread = threading.Thread(
            target=self._run, name=f"telemetry-recorder-{self.campaign}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=30)
        self._thread = None
        self._drain()
        subscription = self._subscription
        if subscription is not None:
            subscription.close()
            self._subscription = None
        self.store.flush()

    @property
    def dropped(self) -> int:
        """Events the bus dropped because this recorder fell behind."""

        subscription = self._subscription
        return subscription.dropped if subscription is not None else 0

    def __enter__(self) -> "TelemetryRecorder":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- drain loop ----------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._drain()

    def _drain(self) -> None:
        subscription = self._subscription
        if subscription is None:
            return
        for event in subscription.poll():
            row: Dict[str, Any] = {
                "topic": event.topic,
                "seq": event.seq,
                "gseq": event.gseq,
                "time": event.time,
            }
            for field, value in event.payload.items():
                row.setdefault(field, value)
            landed = self.store.append_row(
                row,
                scenario=self.scenario,
                key=f"telemetry:{self._token}:{event.topic}:{event.seq}",
                fingerprint=TELEMETRY_FINGERPRINT,
            )
            if landed:
                self.recorded += 1
            else:
                self.skipped += 1

    def __repr__(self) -> str:
        state = "running" if self._thread is not None else "stopped"
        return (
            f"TelemetryRecorder({state}, campaign={self.campaign!r}, "
            f"recorded={self.recorded}, dropped={self.dropped})"
        )
