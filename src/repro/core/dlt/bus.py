"""Single-round divisible-load distribution over a shared bus.

This is the "simple problem [...] polynomial" case of section 2.1: the master
and the workers are connected by a common bus, data is sent to one worker at
a time (one-port model), and each worker starts computing as soon as it has
received its share.  The classical closed form makes all participating
workers finish at the same instant, which is optimal for a single round.

Derivation (standard DLT argument): let ``alpha_i`` be the fraction of the
load ``W`` sent to worker ``i`` (in transmission order), ``z`` the bus time
per load unit and ``w_i`` the compute time per load unit of worker ``i``.
Worker ``i`` finishes at

``T_i = sum_{j <= i} z * alpha_j * W  +  w_i * alpha_i * W``.

Equating ``T_i = T_{i+1}`` gives the recursion
``alpha_{i+1} = alpha_i * w_i / (z + w_{i+1})``; the normalisation
``sum alpha_i = 1`` then fixes ``alpha_1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.dlt.platform import DLTPlatform


@dataclass(frozen=True)
class BusDistribution:
    """Result of a single-round bus distribution."""

    fractions: Tuple[float, ...]
    loads: Tuple[float, ...]
    makespan: float
    order: Tuple[str, ...]
    comm_finish_times: Tuple[float, ...]
    worker_finish_times: Tuple[float, ...]

    @property
    def participating(self) -> int:
        """Number of workers that received a non-negligible share."""

        return sum(1 for f in self.fractions if f > 1e-12)


def bus_single_round(
    total_load: float,
    platform: DLTPlatform,
    *,
    bus_time_per_unit: Optional[float] = None,
) -> BusDistribution:
    """Optimal single-round distribution of ``total_load`` over a bus.

    Parameters
    ----------
    total_load:
        Amount of load ``W`` held by the master.
    platform:
        The workers.  Their ``comm_time`` must all be identical (it *is* the
        bus); pass ``bus_time_per_unit`` to override it explicitly.
    """

    if total_load <= 0:
        raise ValueError("total_load must be > 0")
    workers = platform.workers
    if bus_time_per_unit is None:
        if not platform.is_bus():
            raise ValueError(
                "platform is not a bus (heterogeneous links); use star_single_round "
                "or pass bus_time_per_unit explicitly"
            )
        bus_time_per_unit = workers[0].comm_time
    if bus_time_per_unit < 0:
        raise ValueError("bus_time_per_unit must be >= 0")

    z = bus_time_per_unit
    # With identical link times the makespan of the closed form does not
    # depend on the transmission order; workers are used in the given order.
    w = [worker.compute_time for worker in workers]
    m = len(w)
    # Unnormalised fractions via the recursion alpha_{i+1} = alpha_i w_i / (z + w_{i+1}).
    raw = [1.0]
    for i in range(1, m):
        raw.append(raw[i - 1] * w[i - 1] / (z + w[i]))
    total = sum(raw)
    fractions = [r / total for r in raw]
    loads = [f * total_load for f in fractions]

    comm_finish = []
    finish = []
    clock = 0.0
    for i, worker in enumerate(workers):
        clock += z * loads[i]
        comm_finish.append(clock)
        finish.append(clock + w[i] * loads[i])
    makespan = max(finish) if finish else 0.0
    return BusDistribution(
        fractions=tuple(fractions),
        loads=tuple(loads),
        makespan=makespan,
        order=tuple(worker.name for worker in workers),
        comm_finish_times=tuple(comm_finish),
        worker_finish_times=tuple(finish),
    )


def bus_equal_split(
    total_load: float,
    platform: DLTPlatform,
    *,
    bus_time_per_unit: Optional[float] = None,
) -> BusDistribution:
    """Naive baseline: split the load equally among the workers.

    Used by the DLT benchmark to show the benefit of the optimal closed form
    on heterogeneous workers.
    """

    if total_load <= 0:
        raise ValueError("total_load must be > 0")
    workers = platform.workers
    if bus_time_per_unit is None:
        bus_time_per_unit = workers[0].comm_time
    z = bus_time_per_unit
    m = len(workers)
    fractions = [1.0 / m] * m
    loads = [total_load / m] * m
    comm_finish = []
    finish = []
    clock = 0.0
    for i, worker in enumerate(workers):
        clock += z * loads[i]
        comm_finish.append(clock)
        finish.append(clock + worker.compute_time * loads[i])
    return BusDistribution(
        fractions=tuple(fractions),
        loads=tuple(loads),
        makespan=max(finish),
        order=tuple(worker.name for worker in workers),
        comm_finish_times=tuple(comm_finish),
        worker_finish_times=tuple(finish),
    )
