"""Command-line interface of the campaign store.

::

    python -m repro.store info --store results/        # manifest overview
    python -m repro.store ingest old-campaign.jsonl --store results/
    python -m repro.store ingest legacy.csv --store results/ --scenario fig2.bicriteria
    python -m repro.store query --list                 # named queries
    python -m repro.store query metric-summary --store results/ --param metric=cmax_ratio
    python -m repro.store query rows --store results/ --param scenario=fig2.bicriteria \\
        --out points.csv                               # bit-identical re-export
    python -m repro.store compare --store results/ --metric cmax_ratio \\
        --campaign-a serial --campaign-b inproc
    python -m repro.store validate --store results/    # paper ratio checks, in SQL

Exit codes: 0 on success, 1 when a validation rule fails (or a compare
finds differing cells), 2 on usage errors.  SQL runs on DuckDB when the
``[analytics]`` extra is installed; every command falls back to the
pure-python engine otherwise (force one with ``--engine sql|py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.store.api import FORMATS, StoreUnavailableError, write_rows
from repro.store.columnar import CampaignStore
from repro.store.queries import QUERIES, QueryError, get_query, run_query
from repro.store.validate import validate_store


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Columnar campaign store: ingest, query, compare, validate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    store_arg = argparse.ArgumentParser(add_help=False)
    store_arg.add_argument(
        "--store", type=Path, required=True, metavar="DIR",
        help="campaign store directory (manifest.json + partitions)",
    )
    engine_arg = argparse.ArgumentParser(add_help=False)
    engine_arg.add_argument(
        "--engine", choices=("auto", "sql", "py"), default="auto",
        help="query engine: DuckDB SQL, pure python, or auto (default: SQL "
             "when duckdb is installed)",
    )
    out_arg = argparse.ArgumentParser(add_help=False)
    out_arg.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the result rows to this file instead of printing a table",
    )
    out_arg.add_argument(
        "--format", choices=FORMATS, default=None, dest="out_format",
        help="output format (default: inferred from the --out suffix)",
    )

    info = sub.add_parser("info", parents=[store_arg], help="show the store manifest")
    info.add_argument("--json", action="store_true", help="machine-readable output")

    ing = sub.add_parser(
        "ingest", parents=[store_arg],
        help="ingest a legacy campaign journal (JSONL) or CSV export",
    )
    ing.add_argument("source", type=Path, help="journal .jsonl or .csv file")
    ing.add_argument(
        "--input-format", choices=("journal", "csv"), default=None,
        help="source encoding (default: inferred from the suffix)",
    )
    ing.add_argument("--campaign", default=None, help="campaign label (default: store's)")
    ing.add_argument("--scenario", default=None, help="scenario label for the rows")

    qry = sub.add_parser(
        "query", parents=[store_arg, engine_arg, out_arg],
        help="run a named analytics query",
        description="Run one of the named queries; see --list.",
    )
    qry.add_argument("name", nargs="?", default=None, help="query name (see --list)")
    qry.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="query parameter (repeatable), e.g. --param metric=cmax_ratio",
    )
    qry.add_argument("--sql", action="store_true", help="print the SQL text and exit")
    qry.add_argument("--list", action="store_true", dest="list_queries",
                     help="list the named queries")

    cmp_ = sub.add_parser(
        "compare", parents=[store_arg, engine_arg, out_arg],
        help="diff one metric cell-by-cell across two campaigns",
    )
    cmp_.add_argument("--metric", required=True, help="metric column to compare")
    cmp_.add_argument("--campaign-a", default=None, help="left campaign (default: first of two)")
    cmp_.add_argument("--campaign-b", default=None, help="right campaign (default: second of two)")
    cmp_.add_argument("--scenario", default=None, help="restrict to one scenario")

    val = sub.add_parser(
        "validate", parents=[store_arg, engine_arg],
        help="check the paper's ratio bounds over every stored row",
    )
    val.add_argument("--json", action="store_true", help="machine-readable output")
    return parser


# `query --list` / `query --sql` don't need --store; patch required check there.


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise QueryError(f"bad --param {pair!r}: expected NAME=VALUE")
        params[name] = value
    return params


def _emit(rows: List[Dict[str, Any]], out: Optional[Path], fmt: Optional[str],
          title: str) -> None:
    from repro.experiments.reporting import ascii_table

    if out is not None:
        written = write_rows(rows, out, fmt=fmt)
        print(f"{len(rows)} row(s) written to {written}")
    else:
        print(ascii_table(rows, title=title))


def _cmd_info(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store)
    manifest = store.manifest()
    partitions = store.partitions()
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    if not partitions:
        print(f"store {store.root}: empty (no landed partitions)")
        return 0
    print(f"store {store.root}: {len(store)} row(s) in {len(partitions)} partition(s)")
    for campaign in store.campaigns():
        scenarios = store.scenarios(campaign)
        rows = sum(p.rows for p in store.partitions(campaign=campaign))
        print(f"  campaign {campaign}: {rows} row(s), "
              f"{len(scenarios)} scenario(s): {', '.join(scenarios)}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.store.ingest import ingest

    store = CampaignStore(args.store, campaign=args.campaign or "default")
    try:
        appended = ingest(
            args.source, store,
            fmt=args.input_format, scenario=args.scenario, campaign=args.campaign,
        )
    except OSError as error:
        print(f"cannot read {args.source}: {error}", file=sys.stderr)
        return 2
    store.flush()
    print(
        f"ingested {appended} row(s) from {args.source} into {store.root} "
        f"({store.stats.duplicates} duplicate(s) dropped, "
        f"{store.stats.skipped} skipped)"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.list_queries:
        width = max(len(name) for name in QUERIES)
        for name in sorted(QUERIES):
            query = QUERIES[name]
            params = ", ".join(
                list(query.required) + [f"[{p}]" for p in query.optional]
            )
            print(f"{name:<{width}}  ({params})  {query.description}")
        return 0
    if args.name is None:
        print("give a query name (or --list)", file=sys.stderr)
        return 2
    try:
        query = get_query(args.name)
        params = _parse_params(args.param)
        if args.sql:
            print(query.sql(**params))
            return 0
        store = CampaignStore(args.store)
        rows = run_query(store, args.name, params, engine=args.engine)
    except (QueryError, StoreUnavailableError) as error:
        print(error, file=sys.stderr)
        return 2
    _emit(rows, args.out, args.out_format, title=f"{args.name} ({len(rows)} rows)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store)
    campaign_a, campaign_b = args.campaign_a, args.campaign_b
    if campaign_a is None or campaign_b is None:
        campaigns = store.campaigns()
        if len(campaigns) != 2:
            print(
                f"store holds {len(campaigns)} campaign(s) {campaigns}; "
                "pass --campaign-a and --campaign-b explicitly",
                file=sys.stderr,
            )
            return 2
        campaign_a, campaign_b = campaigns
    params = {"metric": args.metric, "campaign_a": campaign_a,
              "campaign_b": campaign_b, "scenario": args.scenario}
    try:
        rows = run_query(
            store, "compare",
            {k: v for k, v in params.items() if v is not None},
            engine=args.engine,
        )
    except (QueryError, StoreUnavailableError) as error:
        print(error, file=sys.stderr)
        return 2
    _emit(rows, args.out, args.out_format,
          title=f"{args.metric}: {campaign_a} vs {campaign_b} ({len(rows)} cells)")
    differing = sum(1 for row in rows if row.get("equal") is False)
    print(f"{len(rows)} joined cell(s), {differing} differing on {args.metric}")
    return 1 if differing else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store)
    try:
        results = validate_store(store, engine=args.engine)
    except StoreUnavailableError as error:
        print(error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([result.as_dict() for result in results], indent=2))
    else:
        for result in results:
            print(result.describe())
    failed = [result for result in results if not result.ok]
    checked = sum(1 for result in results if not result.skipped)
    print(f"\n{checked - len(failed)}/{checked} applicable rule(s) passed "
          f"({len(results) - checked} skipped)")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `query --list` and `query ... --sql` are store-free: satisfy the
    # --store requirement before argparse enforces it.
    if argv[:1] == ["query"] and ("--list" in argv or "--sql" in argv) \
            and "--store" not in argv:
        argv += ["--store", "."]
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "validate":
            return _cmd_validate(args)
    except StoreUnavailableError as error:
        print(error, file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
