"""Composer behaviour: hand-wired equivalence, overrides, metrics, churn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.criteria import CriteriaReport
from repro.core.policies.rigid_moldable_mix import MixedScheduler
from repro.experiments.harness import CellExecutionError, run_experiment
from repro.metrics.ratios import schedule_ratios
from repro.scenarios import run_scenario, rows_digest
from repro.scenarios.composer import inject_node_churn
from repro.scenarios.spec import ComponentSpec, ScenarioSpec
from repro.workload.models import WorkloadConfig, generate_mixed_jobs

MACHINES = 16

MIX_SPEC = ScenarioSpec(
    name="test.mix-equivalence",
    model="offline",
    platform=ComponentSpec("count", {"machine_count": MACHINES}),
    workload=ComponentSpec("mixed", {"n_jobs": 12, "weight_scheme": "work"}),
    policy=ComponentSpec("mixed"),
    metrics=("makespan_ratio", "weighted_completion_ratio", "policy_name"),
    repetitions=2,
    seed=321,
    sweep={"policy.strategy": ["separate", "first_fit_batch"]},
)


def hand_wired_mix_cell(seed, **axis):
    """The exact computation the composer performs, written by hand."""

    rng = np.random.default_rng(seed)
    jobs = generate_mixed_jobs(
        12, MACHINES,
        rigid_fraction=0.3,
        config=WorkloadConfig(weight_scheme="work"),
        random_state=rng,
    )
    scheduler = MixedScheduler(axis["policy.strategy"])
    schedule = scheduler.schedule(jobs, MACHINES)
    schedule.validate(check_release_dates=False)
    metrics = dict(CriteriaReport.from_schedule(schedule).as_dict())
    metrics.update(schedule_ratios(schedule, jobs, machine_count=MACHINES).as_dict())
    return {
        "makespan_ratio": metrics["makespan_ratio"],
        "weighted_completion_ratio": metrics["weighted_completion_ratio"],
        "policy_name": scheduler.name,
    }


class TestHandWiredEquivalence:
    def test_spec_sweep_is_bit_identical_to_hand_wired_run_experiment(self):
        via_spec = run_scenario(MIX_SPEC)
        hand_wired = run_experiment(
            MIX_SPEC.name,
            hand_wired_mix_cell,
            MIX_SPEC.sweep,
            repetitions=MIX_SPEC.repetitions,
            base_seed=MIX_SPEC.seed,
        )
        assert via_spec.rows == hand_wired.rows  # bit-identical, float for float
        assert rows_digest(via_spec.rows) == rows_digest(hand_wired.rows)


class TestRunScenario:
    def test_sweep_produces_one_row_per_cell(self):
        result = run_scenario(MIX_SPEC)
        assert len(result.rows) == 2 * 2  # 2 strategies x 2 repetitions
        assert {row["policy.strategy"] for row in result.rows} == {
            "separate", "first_fit_batch",
        }

    def test_metrics_filter_keeps_exactly_the_requested_columns(self):
        result = run_scenario(MIX_SPEC)
        expected = {"experiment", "seed", "policy.strategy",
                    "makespan_ratio", "weighted_completion_ratio", "policy_name"}
        assert set(result.rows[0]) == expected

    def test_unknown_metric_fails_the_cell(self):
        bad = MIX_SPEC.evolve(name="test.bad-metric", metrics=("not_a_metric",))
        with pytest.raises(CellExecutionError, match="not_a_metric"):
            run_scenario(bad)

    def test_overrides_change_the_effective_spec(self):
        result = run_scenario(
            MIX_SPEC,
            overrides={"workload.n_jobs": 6},
            sweep={"policy.strategy": ["separate"]},
            repetitions=1,
        )
        assert len(result.rows) == 1

    def test_repeated_runs_are_deterministic(self):
        assert rows_digest(run_scenario(MIX_SPEC).rows) == rows_digest(
            run_scenario(MIX_SPEC).rows
        )

    def test_unknown_workload_kind_surfaces_clearly(self):
        bad = MIX_SPEC.evolve(name="test.bad-kind").with_overrides(
            {"workload.kind": "tea-leaves"}
        )
        with pytest.raises(CellExecutionError, match="tea-leaves"):
            run_scenario(bad)


class TestNodeChurn:
    def test_outage_jobs_are_appended_deterministically(self):
        from repro.workload.arrivals import poisson_arrivals
        from repro.workload.models import generate_rigid_jobs

        jobs = poisson_arrivals(
            generate_rigid_jobs(10, 8, random_state=0), rate=1.0, random_state=0
        )
        churn = {"n_outages": 4, "procs": 3, "mean_repair": 2.0}
        a = inject_node_churn(jobs, 8, churn, np.random.default_rng(5))
        b = inject_node_churn(jobs, 8, churn, np.random.default_rng(5))
        outages = [j for j in a if j.owner == "churn"]
        assert len(a) == len(jobs) + 4 and len(outages) == 4
        assert [(j.release_date, j.duration) for j in a] == [
            (j.release_date, j.duration) for j in b
        ]
        assert all(j.nbproc == 3 for j in outages)

    def test_zero_outages_is_a_no_op(self):
        jobs = []
        assert inject_node_churn(jobs, 8, {"n_outages": 0}, np.random.default_rng(1)) == []
