"""The dashboard HTTP server: endpoints, errors, isolation from producers."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.dashboard.app import DashboardServer
from repro.telemetry import TelemetryBus


@pytest.fixture
def bus():
    return TelemetryBus()


@pytest.fixture
def server(bus):
    with DashboardServer(port=0, bus=bus) as running:
        yield running


def fetch(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.read()


def fetch_json(url: str):
    return json.loads(fetch(url))


class TestEndpoints:
    def test_root_serves_the_html_view(self, server):
        page = fetch(server.url + "/")
        assert b"<!doctype html>" in page.lower()
        assert b"/api/status" in page

    def test_status_returns_the_bus_snapshot(self, server, bus):
        bus.add_snapshot_source("probe", lambda: {"value": 42})
        status = fetch_json(server.url + "/api/status")
        assert status["sources"]["probe"] == {"value": 42}
        assert "schema_version" in status

    def test_topics_and_events_serve_ring_history(self, server, bus):
        bus.emit("demo", "tick", n=1)
        bus.emit("demo", "tick", n=2)
        topics = fetch_json(server.url + "/api/topics")["topics"]
        assert topics["demo"] == 2
        data = fetch_json(server.url + "/api/events?topic=demo&since=1")
        assert [event["seq"] for event in data["events"]] == [2]
        assert data["events"][0]["payload"]["n"] == 2

    def test_events_without_topic_is_the_cursor_form(self, server, bus):
        bus.emit("a", "tick")
        bus.emit("b", "tick")
        data = fetch_json(server.url + "/api/events")
        assert [event["topic"] for event in data["events"]] == ["a", "b"]
        assert data["next"] == 2

    def test_cursor_polling_downloads_each_event_once(self, server, bus):
        bus.emit("scheduler", "tick", n=1)
        bus.emit("worker.w1.spans", "span", name="cell.execute")
        bus.emit("runtime", "tick")  # not requested below
        url = server.url + "/api/events?topics=scheduler,worker.*&since_global="
        first = fetch_json(url + "0")
        assert [event["topic"] for event in first["events"]] == [
            "scheduler", "worker.w1.spans",
        ]
        again = fetch_json(url + str(first["next"]))
        assert again["events"] == []  # cursor resend: nothing re-downloaded
        bus.emit("worker.w2.spans", "span", name="cell.execute")
        tail = fetch_json(url + str(first["next"]))
        assert [event["topic"] for event in tail["events"]] == ["worker.w2.spans"]
        assert tail["next"] > first["next"]

    def test_cursor_limit_pages_without_skipping(self, server, bus):
        for index in range(6):
            bus.emit("t", "tick", index=index)
        url = server.url + "/api/events?limit=4&since_global="
        page = fetch_json(url + "0")
        assert [event["gseq"] for event in page["events"]] == [1, 2, 3, 4]
        rest = fetch_json(url + str(page["next"]))
        assert [event["gseq"] for event in rest["events"]] == [5, 6]

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_scenarios_lists_gantt_capability(self, server):
        scenarios = fetch_json(server.url + "/api/scenarios")["scenarios"]
        by_name = {entry["name"]: entry for entry in scenarios}
        assert by_name["cluster.policy-panel"]["gantt"] is True
        assert by_name["fig2.bicriteria"]["gantt"] is False

    def test_gantt_endpoint_renders_svg(self, server):
        svg = fetch(server.url + "/gantt.svg?scenario=cluster.policy-panel")
        assert svg.startswith(b"<svg")

    def test_gantt_unknown_scenario_is_404_and_bad_model_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/gantt.svg?scenario=no.such")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(server.url + "/gantt.svg?scenario=fig2.bicriteria")
        assert excinfo.value.code == 400


class TestServerLifecycle:
    def test_port_zero_binds_a_free_port_and_stop_is_idempotent(self, bus):
        server = DashboardServer(port=0, bus=bus).start()
        assert server.port != 0
        assert server.url.startswith("http://127.0.0.1:")
        server.stop()
        server.stop()  # second stop is a no-op

    def test_double_start_is_rejected(self, bus):
        with DashboardServer(port=0, bus=bus) as server:
            with pytest.raises(RuntimeError):
                server.start()
