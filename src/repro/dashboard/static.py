"""The dashboard's single-page HTML view (inline CSS + JS, no assets).

Served verbatim at ``/``; everything live comes from the JSON endpoints
(``/api/status`` polled at ~1s, ``/api/events`` with a single bus-wide
``since_global`` cursor covering the feed topics plus every dynamic
``worker.*`` topic in one request per tick).
The palette is expressed as CSS custom properties with a
``prefers-color-scheme`` dark variant, so both modes come from the same
validated steps; text always wears ink tokens, never series colors.
"""

from __future__ import annotations

INDEX_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro · live telemetry</title>
<style>
:root {
  --surface: #fcfcfb; --panel: #ffffff;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --cat1: #2a78d6; --cat2: #eb6834; --cat3: #1baf7a; --cat4: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #222221;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --cat1: #3987e5; --cat2: #d95926; --cat3: #199e70; --cat4: #c98500;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 20px; background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, 'Segoe UI', sans-serif;
}
h1 { font-size: 18px; margin: 0 0 2px; }
.sub { color: var(--ink-2); font-size: 12px; margin-bottom: 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 16px; }
.tile {
  background: var(--panel); border: 1px solid var(--grid); border-radius: 8px;
  padding: 10px 14px; min-width: 118px;
}
.tile .v { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; }
.tile .k { font-size: 11px; color: var(--ink-2); }
section {
  background: var(--panel); border: 1px solid var(--grid); border-radius: 8px;
  padding: 12px 14px; margin-bottom: 14px;
}
section h2 { font-size: 13px; margin: 0 0 8px; color: var(--ink-2);
  font-weight: 600; text-transform: uppercase; letter-spacing: .04em; }
.sweep { margin-bottom: 8px; }
.sweep .name { font-size: 12px; color: var(--ink); }
.sweep .meta { font-size: 11px; color: var(--ink-3);
  font-variant-numeric: tabular-nums; }
.bar { height: 6px; background: var(--grid); border-radius: 3px; overflow: hidden;
  margin-top: 3px; }
.bar > div { height: 100%; background: var(--cat1); border-radius: 3px;
  transition: width .3s; }
#spark { width: 100%; height: 64px; display: block; }
#feed { list-style: none; margin: 0; padding: 0; font-size: 12px;
  font-family: ui-monospace, 'SF Mono', Menlo, monospace; }
#feed li { padding: 1px 0; color: var(--ink-2);
  border-bottom: 1px dashed var(--grid); }
#feed li .t { color: var(--ink-3); margin-right: 6px; }
select {
  background: var(--panel); color: var(--ink); border: 1px solid var(--baseline);
  border-radius: 6px; padding: 4px 8px; font: inherit; margin-bottom: 10px;
}
#gantt { width: 100%; overflow-x: auto; background: #fcfcfb;
  border-radius: 6px; border: 1px solid var(--grid); }
.err { color: var(--cat2); font-size: 12px; }
table { width: 100%; border-collapse: collapse; font-size: 12px;
  font-variant-numeric: tabular-nums; }
th { text-align: left; color: var(--ink-2); font-weight: 600;
  border-bottom: 1px solid var(--baseline); padding: 2px 8px 2px 0; }
td { border-bottom: 1px dashed var(--grid); padding: 2px 8px 2px 0;
  color: var(--ink); }
td.mono { font-family: ui-monospace, 'SF Mono', Menlo, monospace; }
.occ { display: inline-block; width: 64px; height: 6px; background: var(--grid);
  border-radius: 3px; overflow: hidden; vertical-align: middle;
  margin-right: 6px; }
.occ > div { height: 100%; background: var(--cat3); }
</style>
</head>
<body>
<h1>repro · live telemetry</h1>
<div class="sub" id="sub">connecting…</div>

<div class="tiles">
  <div class="tile"><div class="v" id="t-workers">–</div><div class="k">workers</div></div>
  <div class="tile"><div class="v" id="t-pending">–</div><div class="k">queue pending</div></div>
  <div class="tile"><div class="v" id="t-running">–</div><div class="k">running</div></div>
  <div class="tile"><div class="v" id="t-done">–</div><div class="k">cells done</div></div>
  <div class="tile"><div class="v" id="t-rate">–</div><div class="k">cells / s</div></div>
  <div class="tile"><div class="v" id="t-steals">–</div><div class="k">steals</div></div>
  <div class="tile"><div class="v" id="t-spec">–</div><div class="k">speculations</div></div>
  <div class="tile"><div class="v" id="t-events">–</div><div class="k">events published</div></div>
</div>

<section>
  <h2>Sweeps</h2>
  <div id="sweeps"><span class="err" id="nosweeps">no sweeps observed yet</span></div>
</section>

<section>
  <h2>Workers</h2>
  <div id="workers"><span class="err" id="noworkers">no workers connected</span></div>
</section>

<section>
  <h2>Queue depth</h2>
  <svg id="spark" preserveAspectRatio="none" viewBox="0 0 600 64"></svg>
</section>

<section>
  <h2>Gantt explorer</h2>
  <select id="scenario"></select>
  <div id="gantt"><span class="err">pick a scenario</span></div>
</section>

<section>
  <h2>Events</h2>
  <ul id="feed"></ul>
</section>

<script>
"use strict";
const $ = id => document.getElementById(id);
const fmt = v => (v === undefined || v === null) ? "–"
  : (typeof v === "number" && !Number.isInteger(v)) ? v.toFixed(1) : String(v);
let eventCursor = 0;       // bus-wide gseq cursor for /api/events
const queueDepths = [];    // recent pending+running samples
const feedTopics = ["scheduler", "scheduler.workers", "scheduler.assignments",
                    "scheduler.spans", "sweep", "runtime", "worker.*"];

function schedulerSource(status) {
  for (const key of Object.keys(status.sources || {})) {
    const src = status.sources[key];
    if (src && src.kind === "scheduler-snapshot") return src;
  }
  return null;
}

function renderStatus(status) {
  $("sub").textContent = "schema v" + status.schema_version + " · " +
    Object.keys(status.topics || {}).length + " topics · " +
    new Date(status.time * 1000).toLocaleTimeString();
  $("t-events").textContent = fmt(status.published);
  const sched = schedulerSource(status);
  if (sched) {
    $("t-workers").textContent = fmt(Object.keys(sched.workers || {}).length);
    renderWorkers(sched.workers || {});
    const q = sched.queue || {};
    $("t-pending").textContent = fmt(q.pending);
    $("t-running").textContent = fmt(q.running);
    const st = (sched.stats && sched.stats.counters) || {};
    $("t-steals").textContent = fmt(st.steals);
    $("t-spec").textContent = fmt(st.speculations);
    if (q.pending !== undefined) {
      queueDepths.push((q.pending || 0) + (q.running || 0));
      if (queueDepths.length > 240) queueDepths.shift();
      renderSpark();
    }
  }
  const sweeps = Object.values(status.sweeps || {});
  let done = 0, rate = 0;
  const box = $("sweeps");
  if (sweeps.length) {
    box.innerHTML = "";
    for (const s of sweeps) {
      done += s.done; rate += s.finished ? 0 : (s.cells_per_second || 0);
      const div = document.createElement("div");
      div.className = "sweep";
      const pct = s.total ? Math.round(100 * s.done / s.total) : 0;
      div.innerHTML = '<span class="name"></span> <span class="meta">' +
        s.done + "/" + s.total + " · " + (s.errors || 0) + " err · " +
        (s.cached || 0) + " cached · " +
        (s.cells_per_second || 0).toFixed(1) + " cells/s</span>" +
        '<div class="bar"><div style="width:' + pct + '%"></div></div>';
      div.querySelector(".name").textContent = s.experiment;
      box.appendChild(div);
    }
  }
  $("t-done").textContent = fmt(done);
  $("t-rate").textContent = rate.toFixed(1);
}

function renderWorkers(workers) {
  const names = Object.keys(workers).sort();
  const box = $("workers");
  if (!names.length) {
    box.innerHTML = '<span class="err">no workers connected</span>';
    return;
  }
  const rows = names.map(name => {
    const w = workers[name];
    const occ = w.occupancy === null || w.occupancy === undefined
      ? null : Math.max(0, Math.min(1, w.occupancy));
    const pct = occ === null ? 0 : Math.round(occ * 100);
    return "<tr><td class='mono'></td><td>" + fmt(w.assignments) + "</td>" +
      "<td>" + fmt(w.lease) + "</td>" +
      "<td>" + (w.busy_seconds || 0).toFixed(2) + "</td>" +
      "<td>" + (w.idle_seconds || 0).toFixed(2) + "</td>" +
      "<td><span class='occ'><div style='width:" + pct + "%'></div></span>" +
      (occ === null ? "–" : pct + "%") + "</td>" +
      "<td>" + fmt(w.cells) + "</td>" +
      "<td>" + fmt(w.events_forwarded) +
      ((w.events_dropped || 0) ? " (" + w.events_dropped + " dropped)" : "") +
      "</td><td>" + (w.last_seen_age || 0).toFixed(1) + "s</td></tr>";
  });
  box.innerHTML = "<table><thead><tr><th>worker</th><th>running</th>" +
    "<th>lease</th><th>busy s</th><th>idle s</th><th>occupancy</th>" +
    "<th>cells</th><th>events</th><th>seen</th></tr></thead><tbody>" +
    rows.join("") + "</tbody></table>";
  // worker ids are untrusted text: set them via textContent, never innerHTML
  const cells = box.querySelectorAll("td.mono");
  names.forEach((name, i) => { cells[i].textContent = name; });
}

function renderSpark() {
  const svg = $("spark");
  if (!queueDepths.length) return;
  const max = Math.max.apply(null, queueDepths.concat([1]));
  const w = 600, h = 64, n = queueDepths.length;
  const pts = queueDepths.map((d, i) =>
    (i * w / Math.max(n - 1, 1)).toFixed(1) + "," +
    (h - 4 - (d / max) * (h - 10)).toFixed(1)).join(" ");
  svg.innerHTML =
    '<line x1="0" y1="' + (h - 2) + '" x2="' + w + '" y2="' + (h - 2) +
    '" stroke="var(--baseline)" stroke-width="1"/>' +
    '<polyline points="' + pts +
    '" fill="none" stroke="var(--cat1)" stroke-width="2" ' +
    'stroke-linejoin="round" stroke-linecap="round"/>' +
    '<text x="2" y="10" fill="var(--ink-3)" font-size="9">max ' + max + "</text>";
}

async function pollEvents() {
  const feed = $("feed");
  try {
    // One cursor request per tick: only events newer than the last gseq
    // come back, so a long-running dashboard never re-downloads the ring.
    const res = await fetch("/api/events?topics=" +
                            encodeURIComponent(feedTopics.join(",")) +
                            "&since_global=" + eventCursor + "&limit=120");
    const data = await res.json();
    eventCursor = data.next || eventCursor;
    for (const ev of data.events || []) {
      const li = document.createElement("li");
      const p = ev.payload || {};
      const extra = Object.keys(p)
        .filter(k => k !== "schema_version" && k !== "kind")
        .slice(0, 6).map(k => k + "=" + JSON.stringify(p[k])).join(" ");
      li.innerHTML = '<span class="t"></span><span class="k"></span> ';
      li.querySelector(".t").textContent =
        new Date(ev.time * 1000).toLocaleTimeString() + " " + ev.topic;
      li.querySelector(".k").textContent = (p.kind || "?") + " " + extra;
      feed.insertBefore(li, feed.firstChild);
    }
  } catch (e) { /* a failed poll never kills the page */ }
  while (feed.children.length > 30) feed.removeChild(feed.lastChild);
}

async function poll() {
  try {
    const res = await fetch("/api/status");
    renderStatus(await res.json());
  } catch (e) {
    $("sub").textContent = "status poll failed: " + e;
  }
  await pollEvents();
  setTimeout(poll, 1000);
}

async function loadScenarios() {
  try {
    const res = await fetch("/api/scenarios");
    const data = await res.json();
    const sel = $("scenario");
    sel.innerHTML = "";
    for (const s of data.scenarios || []) {
      if (!s.gantt) continue;
      const opt = document.createElement("option");
      opt.value = s.name;
      opt.textContent = s.name + "  [" + s.model + "]";
      sel.appendChild(opt);
    }
    sel.onchange = showGantt;
    if (sel.options.length) showGantt();
  } catch (e) {
    $("gantt").innerHTML = '<span class="err">scenario list failed</span>';
  }
}

async function showGantt() {
  const name = $("scenario").value;
  if (!name) return;
  $("gantt").innerHTML = '<span class="err">rendering…</span>';
  try {
    const res = await fetch("/gantt.svg?scenario=" + encodeURIComponent(name));
    if (!res.ok) throw new Error(await res.text());
    $("gantt").innerHTML = await res.text();
  } catch (e) {
    $("gantt").innerHTML = '<span class="err">gantt failed: ' + e + "</span>";
  }
}

loadScenarios();
poll();
</script>
</body>
</html>
"""
