"""python -m repro.store: exit codes, re-export bit-identity, validation."""

from __future__ import annotations

from repro.distributed.campaign import CampaignJournal
from repro.experiments.grid import CellOutcome, expand_grid
from repro.store.cli import main
from repro.store.columnar import CampaignStore


def seed_store(root, campaigns=("serial", "rerun")):
    from repro.scenarios.composer import run_scenario
    from repro.scenarios.registry import get

    spec = get("fig2.bicriteria")
    for campaign in campaigns:
        sink = CampaignStore(root, campaign=campaign, fmt="jsonl")
        run_scenario(spec, smoke=True, sink=sink)
    return CampaignStore(root)


class TestInfo:
    def test_empty_store(self, tmp_path, capsys):
        assert main(["info", "--store", str(tmp_path / "empty")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_populated_store(self, tmp_path, capsys):
        seed_store(tmp_path / "s")
        assert main(["info", "--store", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "4 row(s)" in out
        assert "campaign serial" in out and "campaign rerun" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        seed_store(tmp_path / "s", campaigns=("only",))
        assert main(["info", "--store", str(tmp_path / "s"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.store/1"
        assert len(payload["partitions"]) == 1


class TestQuery:
    def test_list_needs_no_store(self, capsys):
        assert main(["query", "--list"]) == 0
        out = capsys.readouterr().out
        assert "metric-summary" in out and "compare" in out

    def test_sql_prints_text(self, capsys):
        assert main(["query", "metric-summary", "--param", "metric=cmax_ratio",
                     "--sql"]) == 0
        assert "FROM rows" in capsys.readouterr().out

    def test_named_query_runs(self, tmp_path, capsys):
        seed_store(tmp_path / "s")
        assert main(["query", "metric-summary", "--store", str(tmp_path / "s"),
                     "--param", "metric=cmax_ratio", "--engine", "py"]) == 0
        assert "serial" in capsys.readouterr().out

    def test_bad_query_and_params_exit_2(self, tmp_path, capsys):
        seed_store(tmp_path / "s", campaigns=("only",))
        assert main(["query", "nope", "--store", str(tmp_path / "s")]) == 2
        assert main(["query", "metric-summary", "--store", str(tmp_path / "s"),
                     "--engine", "py"]) == 2
        assert main(["query", "rows", "--store", str(tmp_path / "s"),
                     "--param", "oops"]) == 2
        capsys.readouterr()

    def test_rows_reexport_is_bit_identical_to_direct_csv(self, tmp_path, capsys):
        from repro.experiments.reporting import to_csv
        from repro.scenarios.composer import run_scenario
        from repro.scenarios.registry import get

        store = CampaignStore(tmp_path / "s", campaign="serial", fmt="jsonl")
        result = run_scenario(get("fig2.bicriteria"), smoke=True, sink=store)
        direct = tmp_path / "direct.csv"
        direct.write_text(to_csv(result.rows), encoding="utf-8")
        assert main(["query", "rows", "--store", str(tmp_path / "s"),
                     "--engine", "py", "--out", str(tmp_path / "reexport.csv")]) == 0
        capsys.readouterr()
        assert (tmp_path / "reexport.csv").read_bytes() == direct.read_bytes()


class TestCompare:
    def test_identical_campaigns_exit_0(self, tmp_path, capsys):
        seed_store(tmp_path / "s")
        assert main(["compare", "--store", str(tmp_path / "s"),
                     "--metric", "cmax_ratio", "--engine", "py"]) == 0
        assert "0 differing" in capsys.readouterr().out

    def test_differing_campaigns_exit_1(self, tmp_path, capsys):
        root = tmp_path / "s"
        for campaign, value in (("a", 1.0), ("b", 2.0)):
            store = CampaignStore(root, campaign=campaign, fmt="jsonl")
            store.append_row(
                {"experiment": "e", "seed": 1, "m": value},
                scenario="sc", key="shared-cell-key",
            )
            store.flush()
        assert main(["compare", "--store", str(root), "--metric", "m",
                     "--campaign-a", "a", "--campaign-b", "b",
                     "--engine", "py"]) == 1
        assert "1 differing" in capsys.readouterr().out

    def test_ambiguous_campaigns_exit_2(self, tmp_path, capsys):
        seed_store(tmp_path / "s", campaigns=("a", "b", "c"))
        assert main(["compare", "--store", str(tmp_path / "s"),
                     "--metric", "cmax_ratio", "--engine", "py"]) == 2
        assert "--campaign-a" in capsys.readouterr().err


class TestValidate:
    def test_clean_store_exits_0(self, tmp_path, capsys):
        seed_store(tmp_path / "s", campaigns=("only",))
        assert main(["validate", "--store", str(tmp_path / "s"),
                     "--engine", "py"]) == 0
        out = capsys.readouterr().out
        assert "bicriteria-cmax-within-4rho" in out
        assert "FAIL" not in out

    def test_violating_store_exits_1(self, tmp_path, capsys):
        store = seed_store(tmp_path / "s", campaigns=("only",))
        store.append_row({"experiment": "bad", "seed": 0, "cmax_ratio": 99.0},
                         scenario="bad")
        store.flush()
        assert main(["validate", "--store", str(tmp_path / "s"),
                     "--engine", "py"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        import json

        seed_store(tmp_path / "s", campaigns=("only",))
        assert main(["validate", "--store", str(tmp_path / "s"),
                     "--engine", "py", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("]") + 1])
        assert any(entry["rule"] == "elapsed-nonnegative" for entry in payload)


class TestIngest:
    def test_journal_ingest_via_cli(self, tmp_path, capsys):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        for cell in expand_grid({"x": [1, 2]}, repetitions=1):
            journal.record(
                cell, CellOutcome(cell=cell, metrics={"v": 1.0}, elapsed_seconds=0.1),
                "v1",
            )
        assert main(["ingest", str(tmp_path / "j.jsonl"),
                     "--store", str(tmp_path / "s"), "--campaign", "legacy",
                     "--scenario", "old-sweep"]) == 0
        assert "ingested 2 row(s)" in capsys.readouterr().out
        store = CampaignStore(tmp_path / "s")
        assert store.campaigns() == ["legacy"]
        assert store.scenarios() == ["old-sweep"]

    def test_missing_source_exits_2(self, tmp_path, capsys):
        assert main(["ingest", str(tmp_path / "missing.jsonl"),
                     "--store", str(tmp_path / "s"), "--input-format", "csv"]) == 2
        assert "cannot read" in capsys.readouterr().err
