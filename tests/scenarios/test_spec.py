"""Spec layer: dict/TOML round-tripping, validation, overrides."""

from __future__ import annotations

import pytest

from repro.scenarios.spec import ComponentSpec, ScenarioSpec, SpecError


def rich_spec() -> ScenarioSpec:
    """A spec exercising every value shape (nested dicts, lists, bools)."""

    return ScenarioSpec(
        name="test.rich",
        model="cluster-online",
        description='quotes "inside" and backslash \\ survive',
        tags=("a", "b"),
        metrics=("makespan", "mean_stretch"),
        repetitions=2,
        seed=99,
        platform=ComponentSpec("count", {"machine_count": 32}),
        workload=ComponentSpec(
            "moldable",
            {
                "n_jobs": 20,
                "runtime_range": [0.5, 10.0],
                "churn": {"n_outages": 3, "procs": 2},
            },
        ),
        arrival=ComponentSpec("poisson", {"rate": 2.0}),
        policy=ComponentSpec("backfill", {"flag": True}),
        sweep={"policy.kind": ["fifo", "backfill"], "workload.n_jobs": [10, 20]},
        smoke={
            "repetitions": 1,
            "workload.n_jobs": 5,
            "sweep": {"policy.kind": ["backfill"]},
        },
    ).validate()


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = rich_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_toml_round_trip(self):
        spec = rich_spec()
        text = spec.to_toml()
        assert ScenarioSpec.from_toml(text).to_dict() == spec.to_dict()

    def test_toml_is_parseable_by_tomllib(self):
        import tomllib

        data = tomllib.loads(rich_spec().to_toml())
        assert data["name"] == "test.rich"
        assert data["workload"]["churn"] == {"n_outages": 3, "procs": 2}

    def test_every_builtin_round_trips(self):
        from repro.scenarios import all_specs

        for spec in all_specs():
            assert ScenarioSpec.from_toml(spec.to_toml()).to_dict() == spec.to_dict()
            assert ScenarioSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_invalid_toml_raises_spec_error(self):
        with pytest.raises(SpecError, match="invalid scenario TOML"):
            ScenarioSpec.from_toml("name = [unclosed")


class TestValidation:
    def test_unknown_top_level_key_rejected(self):
        data = rich_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(SpecError, match="unknown spec keys"):
            ScenarioSpec.from_dict(data)

    def test_missing_required_key_rejected(self):
        data = rich_spec().to_dict()
        del data["workload"]
        with pytest.raises(SpecError, match="missing required key"):
            ScenarioSpec.from_dict(data)

    def test_bad_name_rejected(self):
        with pytest.raises(SpecError, match="invalid scenario name"):
            rich_spec().evolve(name="Has Spaces")

    def test_unknown_model_rejected(self):
        with pytest.raises(SpecError, match="unknown model"):
            rich_spec().evolve(model="quantum")

    def test_repetitions_must_be_positive(self):
        with pytest.raises(SpecError, match="repetitions"):
            rich_spec().evolve(repetitions=0)

    def test_sweep_axis_needs_section_prefix(self):
        with pytest.raises(SpecError, match="section.param"):
            rich_spec().evolve(sweep={"n_jobs": [1, 2]})

    def test_sweep_axis_unknown_section(self):
        with pytest.raises(SpecError, match="unknown section"):
            rich_spec().evolve(sweep={"dessert.flavour": ["vanilla"]})

    def test_sweep_axis_needs_values(self):
        with pytest.raises(SpecError, match="non-empty list"):
            rich_spec().evolve(sweep={"policy.kind": []})

    def test_component_needs_kind(self):
        with pytest.raises(SpecError, match="missing the 'kind' key"):
            ComponentSpec.from_dict({"n_jobs": 3}, section="workload")


class TestOverrides:
    def test_with_overrides_sets_params_and_kind(self):
        spec = rich_spec()
        derived = spec.with_overrides({"workload.n_jobs": 7, "policy.kind": "fifo"})
        assert derived.workload.params["n_jobs"] == 7
        assert derived.policy.kind == "fifo"
        # The original spec is untouched (copies all the way down).
        assert spec.workload.params["n_jobs"] == 20
        assert spec.policy.kind == "backfill"

    def test_smoke_spec_applies_all_override_kinds(self):
        smoke = rich_spec().smoke_spec()
        assert smoke.repetitions == 1
        assert smoke.workload.params["n_jobs"] == 5
        assert smoke.sweep == {"policy.kind": ["backfill"]}

    def test_smoke_defaults_to_one_repetition(self):
        spec = rich_spec().evolve(smoke={})
        assert spec.smoke_spec().repetitions == 1

    def test_evolve_validates(self):
        with pytest.raises(SpecError):
            rich_spec().evolve(sweep={"bad": [1]})
