"""Aggregation of repeated experiment runs.

Every benchmark repeats its simulations over several seeds; this module turns
the resulting list of per-run dictionaries into summary rows (mean, standard
deviation, percentiles and a normal-approximation confidence half-width) that
the reporting helpers print as tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one metric over repeated runs."""

    metric: str
    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float
    ci95_halfwidth: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "metric": self.metric,
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "p90": self.p90,
            "max": self.maximum,
            "ci95": self.ci95_halfwidth,
        }


def summarize(metric: str, values: Sequence[float]) -> Summary:
    """Summary statistics of a list of values (empty lists yield NaNs)."""

    if len(values) == 0:
        nan = float("nan")
        return Summary(metric, 0, nan, nan, nan, nan, nan, nan, nan)
    array = np.asarray(values, dtype=float)
    mean = float(array.mean())
    std = float(array.std(ddof=1)) if len(array) > 1 else 0.0
    ci = 1.96 * std / math.sqrt(len(array)) if len(array) > 1 else 0.0
    return Summary(
        metric=metric,
        count=len(array),
        mean=mean,
        std=std,
        minimum=float(array.min()),
        median=float(np.median(array)),
        p90=float(np.percentile(array, 90)),
        maximum=float(array.max()),
        ci95_halfwidth=ci,
    )


def aggregate_runs(
    runs: Sequence[Mapping[str, float]],
    *,
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Summary]:
    """Aggregate a list of per-run metric dictionaries.

    ``metrics`` restricts the aggregation to the given keys; by default every
    numeric key present in the first run is aggregated.
    """

    if not runs:
        return {}
    if metrics is None:
        metrics = [
            key
            for key, value in runs[0].items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
    out: Dict[str, Summary] = {}
    for metric in metrics:
        values = [float(run[metric]) for run in runs if metric in run]
        out[metric] = summarize(metric, values)
    return out


class StreamingAggregator:
    """Fold rows into per-metric summaries one row at a time.

    The parallel experiment harness streams rows back as cells complete;
    this accumulator ingests them incrementally (``update``) and can produce
    exact :class:`Summary` objects at any point (``summaries``), so partial
    results of a long sweep can be inspected before the sweep finishes.
    Partial aggregators from sharded runs combine with ``merge``.

    As in :func:`aggregate_runs`, the tracked metrics default to the numeric
    keys of the first row seen.
    """

    def __init__(self, metrics: Optional[Sequence[str]] = None) -> None:
        self._metrics: Optional[List[str]] = list(metrics) if metrics is not None else None
        self._values: Dict[str, List[float]] = {}
        self.rows_seen = 0

    def update(self, row: Mapping[str, object]) -> None:
        """Ingest one row."""

        if self._metrics is None:
            self._metrics = [
                key
                for key, value in row.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
        self.rows_seen += 1
        for metric in self._metrics:
            if metric not in row:
                continue
            try:
                value = float(row[metric])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue  # a later row may carry e.g. an error string here
            self._values.setdefault(metric, []).append(value)

    def update_rows(self, rows: Sequence[Mapping[str, object]]) -> None:
        """Ingest a batch of rows (column-at-a-time, one append list per metric).

        Equivalent to calling :meth:`update` on each row in order -- the
        tracked-metric inference still looks at the first row seen -- but
        folds each metric as one pass over the batch, which is what the
        vectorized sweep paths and the store re-export helpers feed it.
        """

        if not rows:
            return
        if self._metrics is None:
            self._metrics = [
                key
                for key, value in rows[0].items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
        self.rows_seen += len(rows)
        for metric in self._metrics:
            values = self._values.get(metric)
            if values is None:
                values = self._values.setdefault(metric, [])
            append = values.append
            for row in rows:
                if metric not in row:
                    continue
                try:
                    append(float(row[metric]))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue  # a later row may carry e.g. an error string here
        # NOTE: like update(), rows where a tracked metric is missing or
        # non-numeric simply contribute nothing for that metric.

    def merge(self, other: "StreamingAggregator") -> None:
        """Fold another aggregator (e.g. from a sharded sweep) into this one."""

        self.rows_seen += other.rows_seen
        if self._metrics is None:
            self._metrics = list(other._metrics) if other._metrics is not None else None
        for metric, values in other._values.items():
            if self._metrics is not None and metric in self._metrics:
                self._values.setdefault(metric, []).extend(values)

    def summaries(self) -> Dict[str, Summary]:
        """Exact summaries of everything ingested so far."""

        return {
            metric: summarize(metric, self._values.get(metric, []))
            for metric in (self._metrics or [])
        }


def group_by(
    runs: Sequence[Mapping[str, object]], key: str
) -> Dict[object, List[Mapping[str, object]]]:
    """Group run dictionaries by the value of ``key`` (stable order)."""

    groups: Dict[object, List[Mapping[str, object]]] = {}
    for run in runs:
        groups.setdefault(run.get(key), []).append(run)
    return groups
