"""Unit tests of the conservative and EASY backfilling policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import RigidJob
from repro.core.policies.backfilling import (
    AvailabilityProfile,
    ConservativeBackfilling,
    EasyBackfilling,
)
from repro.core.policies.base import SchedulerError
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_rigid_jobs


class TestAvailabilityProfile:
    def test_initial_state(self):
        profile = AvailabilityProfile(8)
        assert profile.free_at(0.0) == 8
        assert profile.free_at(1_000.0) == 8

    def test_booking_reduces_free_count(self):
        profile = AvailabilityProfile(8)
        profile.book(2.0, 5.0, 3)
        assert profile.free_at(0.0) == 8
        assert profile.free_at(2.0) == 5
        assert profile.free_at(6.9) == 5
        assert profile.free_at(7.0) == 8

    def test_earliest_fit_finds_hole(self):
        profile = AvailabilityProfile(4)
        profile.book(0.0, 10.0, 4)       # everything busy until t=10
        assert profile.earliest_fit(0.0, 2, 3.0) == pytest.approx(10.0)

    def test_earliest_fit_uses_partial_hole(self):
        profile = AvailabilityProfile(4)
        profile.book(0.0, 10.0, 2)       # 2 processors stay free
        assert profile.earliest_fit(0.0, 2, 3.0) == 0.0
        assert profile.earliest_fit(0.0, 3, 3.0) == pytest.approx(10.0)

    def test_earliest_fit_respects_ready_time(self):
        profile = AvailabilityProfile(4)
        assert profile.earliest_fit(7.5, 1, 1.0) == 7.5

    def test_overbooking_rejected(self):
        profile = AvailabilityProfile(2)
        profile.book(0.0, 5.0, 2)
        with pytest.raises(SchedulerError):
            profile.book(1.0, 1.0, 1)

    def test_request_larger_than_platform_rejected(self):
        profile = AvailabilityProfile(2)
        with pytest.raises(SchedulerError):
            profile.earliest_fit(0.0, 3, 1.0)


class TestConservativeBackfilling:
    def test_empty(self):
        assert len(ConservativeBackfilling().schedule([], 4)) == 0

    def test_respects_release_dates(self):
        jobs = [RigidJob(name="a", nbproc=1, duration=2.0, release_date=5.0)]
        schedule = ConservativeBackfilling().schedule(jobs, 4)
        schedule.validate()
        assert schedule["a"].start >= 5.0

    def test_backfills_into_holes(self):
        # A wide job blocks the machine from t=0 to 10; a later-submitted
        # small job fits before it only if the hole is used.
        jobs = [
            RigidJob(name="wide", nbproc=4, duration=10.0, release_date=0.0),
            RigidJob(name="blocker", nbproc=3, duration=4.0, release_date=0.0),
            RigidJob(name="small", nbproc=1, duration=3.0, release_date=0.0),
        ]
        schedule = ConservativeBackfilling().schedule(jobs, 4)
        schedule.validate()
        # "small" (submitted last) runs alongside "blocker" in the hole before "wide".
        assert schedule["small"].start < schedule["wide"].start

    def test_never_delays_earlier_jobs(self):
        """Conservative property: adding later jobs never delays earlier ones."""

        jobs = generate_rigid_jobs(25, 8, random_state=3)
        jobs = poisson_arrivals(jobs, rate=0.5, random_state=3)
        first_half = sorted(jobs, key=lambda j: (j.release_date, j.name))[:12]
        schedule_half = ConservativeBackfilling().schedule(first_half, 8)
        schedule_full = ConservativeBackfilling().schedule(jobs, 8)
        for job in first_half:
            assert schedule_full[job.name].start <= schedule_half[job.name].start + 1e-9

    def test_all_jobs_scheduled(self, random_rigid_jobs):
        jobs = poisson_arrivals(random_rigid_jobs, rate=1.0, random_state=5)
        schedule = ConservativeBackfilling().schedule(jobs, 16)
        schedule.validate()
        assert len(schedule) == len(jobs)


class TestEasyBackfilling:
    def test_empty(self):
        assert len(EasyBackfilling().schedule([], 4)) == 0

    def test_respects_release_dates(self):
        jobs = [RigidJob(name="a", nbproc=2, duration=2.0, release_date=3.0),
                RigidJob(name="b", nbproc=1, duration=1.0, release_date=0.0)]
        schedule = EasyBackfilling().schedule(jobs, 4)
        schedule.validate()
        assert schedule["a"].start >= 3.0

    def test_backfilling_improves_utilization(self):
        # Head of queue needs the whole machine; a short job should be
        # backfilled in front of it instead of waiting.
        jobs = [
            RigidJob(name="running", nbproc=3, duration=10.0, release_date=0.0),
            RigidJob(name="head", nbproc=4, duration=5.0, release_date=1.0),
            RigidJob(name="filler", nbproc=1, duration=2.0, release_date=1.0),
        ]
        schedule = EasyBackfilling().schedule(jobs, 4)
        schedule.validate()
        assert schedule["filler"].start == pytest.approx(1.0)
        # The head job starts as soon as the big job finishes: backfilling did
        # not delay it.
        assert schedule["head"].start == pytest.approx(10.0)

    def test_all_jobs_scheduled(self, random_rigid_jobs):
        jobs = poisson_arrivals(random_rigid_jobs, rate=2.0, random_state=7)
        schedule = EasyBackfilling().schedule(jobs, 16)
        schedule.validate()
        assert len(schedule) == len(jobs)

    def test_offline_instance(self, random_rigid_jobs):
        schedule = EasyBackfilling().schedule(random_rigid_jobs, 16)
        schedule.validate()
        assert len(schedule) == len(random_rigid_jobs)


@settings(max_examples=25, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=20),
    machines=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=5_000),
    rate=st.floats(min_value=0.05, max_value=5.0),
)
def test_backfilling_policies_always_produce_valid_schedules(n_jobs, machines, seed, rate):
    """Property: both backfilling variants schedule every job, validly."""

    jobs = generate_rigid_jobs(n_jobs, machines, random_state=seed)
    jobs = poisson_arrivals(jobs, rate=rate, random_state=seed)
    for policy in (ConservativeBackfilling(), EasyBackfilling()):
        schedule = policy.schedule(jobs, machines)
        schedule.validate()
        assert len(schedule) == n_jobs
