"""Grid expansion and cell execution: the first two stages of a sweep.

An experiment is a cross product of parameter values times a number of seeded
repetitions.  This module turns that declaration into an explicit, ordered
list of :class:`Cell` objects (grid expansion), and provides the function
object that executes one cell and captures its metrics, timing and errors
(:class:`CellFunction`).  The third stage -- aggregation of the streamed rows
-- lives in :mod:`repro.metrics.aggregate`; the execution backends live in
:mod:`repro.experiments.executors`.

Keeping the stages separate is what makes the sweep engine parallel: cells
are self-contained, picklable work units with deterministic per-cell seeds,
so any executor that preserves submission order reproduces the serial rows
bit for bit.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

RunFunction = Callable[..., Mapping[str, Any]]


@dataclass(frozen=True)
class Cell:
    """One (configuration, seed) point of a sweep.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    cell is immutable and cheap to pickle; ``params_dict`` rebuilds the
    mapping passed to the run function.
    """

    index: int
    repetition: int
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"({inner}{', ' if inner else ''}seed={self.seed})"


@dataclass
class CellOutcome:
    """What came back from running one cell: metrics or an error, plus timing."""

    cell: Cell
    metrics: Optional[Dict[str, Any]] = None
    elapsed_seconds: float = 0.0
    error: Optional[str] = None       # formatted traceback from the worker
    error_type: Optional[str] = None  # exception class name
    cached: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None


def expand_grid(
    parameters: Optional[Mapping[str, Sequence[Any]]] = None,
    *,
    repetitions: int = 1,
    base_seed: int = 1234,
) -> List[Cell]:
    """Expand a parameter grid into an ordered list of cells.

    Parameter names are iterated in sorted order, values in the given order,
    repetitions innermost; the per-cell seed is ``base_seed + repetition`` --
    the same enumeration the historical serial runner used, so results are
    reproducible across executors and releases.
    """

    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    parameters = parameters or {}
    keys = sorted(parameters)
    combos = itertools.product(*(parameters[k] for k in keys)) if keys else [()]
    cells: List[Cell] = []
    index = 0
    for combo in combos:
        params = tuple(zip(keys, combo))
        for repetition in range(repetitions):
            cells.append(
                Cell(
                    index=index,
                    repetition=repetition,
                    seed=base_seed + repetition,
                    params=params,
                )
            )
            index += 1
    return cells


class CellFunction:
    """Picklable wrapper executing one cell: ``run(seed=..., **params)``.

    Exceptions raised by the run function are captured as a formatted
    traceback in the outcome instead of propagating, so one bad cell cannot
    take down a worker pool; the harness decides whether to re-raise.
    """

    def __init__(self, run: RunFunction) -> None:
        self.run = run

    def __call__(self, cell: Cell) -> CellOutcome:
        start = time.perf_counter()
        try:
            metrics = dict(self.run(seed=cell.seed, **cell.params_dict))
        except Exception as error:
            return CellOutcome(
                cell=cell,
                elapsed_seconds=time.perf_counter() - start,
                error=traceback.format_exc(),
                error_type=type(error).__name__,
            )
        return CellOutcome(
            cell=cell,
            metrics=metrics,
            elapsed_seconds=time.perf_counter() - start,
        )


def _cell_key_uncached(experiment: str, cell: Cell, version: str = "") -> str:
    """Reference implementation of :func:`cell_key` (no precomputation).

    Kept verbatim as the ground truth: :class:`CellKeyer` must produce
    byte-identical blobs (a test asserts it), because these hashes key
    on-disk caches, campaign journals and store partitions.
    """

    payload = {
        "experiment": experiment,
        "params": [[k, repr(v)] for k, v in cell.params],
        "seed": cell.seed,
        "repetition": cell.repetition,
        "version": version,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CellKeyer:
    """Precomputed :func:`cell_key` builder for one (experiment, version).

    ``cell_key`` serialises the same experiment name and version string for
    every cell of a sweep; over a cached campaign that is two JSON dumps and
    a dict build per cell lookup *and* per store.  The keyer freezes the
    constant head/tail of the JSON blob once and caches the params segment
    per distinct configuration (repetitions share it), so the per-cell work
    drops to one string concatenation and the SHA-256.

    JSON serialisation is compositional: ``json.dumps(payload, sort_keys=
    True, default=repr)`` of the payload dict equals the literal key/value
    skeleton (keys are already in sorted order: experiment < params <
    repetition < seed < version) with each value's own ``json.dumps`` -- the
    default ``(', ', ': ')`` separators -- spliced in.  The blobs are
    therefore byte-identical to the reference implementation.
    """

    __slots__ = ("_head", "_tail", "_params_json")

    def __init__(self, experiment: str, version: str = "") -> None:
        self._head = (
            '{"experiment": '
            + json.dumps(experiment, sort_keys=True, default=repr)
            + ', "params": '
        )
        self._tail = (
            ', "version": ' + json.dumps(version, sort_keys=True, default=repr) + "}"
        )
        self._params_json: Dict[Tuple[Tuple[str, Any], ...], str] = {}

    def blob(self, cell: Cell) -> str:
        """The exact JSON text hashed for ``cell`` (exposed for tests)."""

        try:
            params_json = self._params_json.get(cell.params)
        except TypeError:  # unhashable parameter value: skip the memo
            params_json = None
        else:
            if params_json is None:
                params_json = json.dumps(
                    [[k, repr(v)] for k, v in cell.params], sort_keys=True, default=repr
                )
                self._params_json[cell.params] = params_json
        if params_json is None:
            params_json = json.dumps(
                [[k, repr(v)] for k, v in cell.params], sort_keys=True, default=repr
            )
        repetition = json.dumps(cell.repetition, sort_keys=True, default=repr)
        seed = json.dumps(cell.seed, sort_keys=True, default=repr)
        return (
            f'{self._head}{params_json}, "repetition": {repetition}, '
            f'"seed": {seed}{self._tail}'
        )

    def key(self, cell: Cell) -> str:
        return hashlib.sha256(self.blob(cell).encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=128)
def keyer_for(experiment: str, version: str = "") -> CellKeyer:
    """The shared :class:`CellKeyer` of one (experiment, version) pair.

    Every key path -- result cache, campaign store, distributed journal --
    funnels through :func:`cell_key`, so memoising the keyer here gives all
    of them the once-per-sweep precomputation without signature changes.
    """

    return CellKeyer(experiment, version)


def cell_key(experiment: str, cell: Cell, version: str = "") -> str:
    """Stable hash identifying one cell of one experiment (cache key).

    The key covers the experiment name, the configuration, the seed and a
    free-form ``version`` string (typically a fingerprint of the run
    function) so stale cached results are not replayed across code changes.
    """

    return keyer_for(experiment, version).key(cell)
