"""Centralized light-grid simulation (section 5.2, "Centralized").

"Each cluster keeps its own submission system used only for jobs that are to
be processed locally.  Additionally, there is a centralized server to which
all grid jobs are submitted.  In this setting, grid jobs are only
multi-parametric jobs, which the centralized server submits on the local
clusters in order to fill the holes of their respective schedules.  This is
achieved through the notion of best-effort jobs: the local scheduler gives no
warranty that the job will be finished.  If a locally submitted job requires
a processor currently in use by a best-effort job, the latter will be killed.
The central server then has to submit it once again.  [...]  Furthermore,
this ensures that local users of the clusters will not be disturbed by grid
jobs."

The simulation implements exactly this protocol:

* each cluster runs its local queue policy (FCFS or backfilling) for its own
  community's jobs;
* a central :class:`GridServer` holds the multi-parametric bags and keeps the
  idle processors of every cluster busy with *best-effort runs* (one run =
  one processor for ``run_time`` time units);
* when a local job needs processors held by best-effort runs, those runs are
  killed and their work is resubmitted by the server (kill + resubmit events
  are recorded in the trace);
* the **non-disturbance invariant** -- local jobs start exactly as if the
  grid jobs did not exist -- is checked by the test-suite by comparing
  against a simulation without grid jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.allocation import Schedule
from repro.core.criteria import CriteriaReport
from repro.core.job import Job, ParametricSweep
from repro.core.policies.base import MoldableAllocator, SchedulerError
from repro.platform.grid import LightGrid
from repro.simulation.cluster_sim import QUEUE_POLICIES, QueuePolicy
from repro.simulation.engine import Simulator
from repro.simulation.resources import ProcessorPool
from repro.simulation.tracing import Trace


@dataclass
class GridSimulationResult:
    """Outcome of a centralized grid simulation."""

    #: Per-cluster schedule of the *local* jobs.
    local_schedules: Dict[str, Schedule]
    #: Per-cluster criteria report of the local jobs.
    local_criteria: Dict[str, CriteriaReport]
    #: Completion time of each multi-parametric bag (None if unfinished).
    bag_completion: Dict[str, Optional[float]]
    #: Number of best-effort runs completed per bag.
    runs_completed: Dict[str, int]
    #: Number of best-effort kills (total).
    kills: int
    #: Number of best-effort runs launched (including resubmissions).
    launches: int
    #: Simulation end time.
    horizon: float
    #: Full event trace.
    trace: Trace
    #: Average utilization per cluster (local + best-effort work).
    utilization: Dict[str, float]

    @property
    def total_runs_completed(self) -> int:
        return sum(self.runs_completed.values())

    def grid_throughput(self) -> float:
        """Best-effort runs completed per unit of time."""

        if self.horizon <= 0:
            return 0.0
        return self.total_runs_completed / self.horizon


@dataclass
class _Run:
    """One elementary run of a multi-parametric bag."""

    bag: ParametricSweep
    index: int

    @property
    def name(self) -> str:
        return f"{self.bag.name}#{self.index}"


class GridServer:
    """The central server holding the multi-parametric grid jobs."""

    def __init__(self, bags: Sequence[ParametricSweep]) -> None:
        names = [b.name for b in bags]
        if len(set(names)) != len(names):
            raise ValueError("duplicate bag names")
        self.bags = list(bags)
        self.pending: List[_Run] = []
        self.completed: Dict[str, int] = {b.name: 0 for b in bags}
        self.launches = 0
        self.kills = 0
        self.bag_completion: Dict[str, Optional[float]] = {b.name: None for b in bags}
        for bag in self.bags:
            for index in range(bag.n_runs):
                self.pending.append(_Run(bag, index))

    def next_run(self) -> Optional[_Run]:
        if not self.pending:
            return None
        return self.pending.pop(0)

    def resubmit(self, run: _Run) -> None:
        """A killed run goes back to the head of the queue ("submit it once again")."""

        self.kills += 1
        self.pending.insert(0, run)

    def complete(self, run: _Run, now: float) -> None:
        self.completed[run.bag.name] += 1
        if self.completed[run.bag.name] == run.bag.n_runs:
            self.bag_completion[run.bag.name] = now

    @property
    def remaining_runs(self) -> int:
        return len(self.pending)


class CentralizedGridSimulator:
    """Simulate the centralized organisation of section 5.2 on a light grid."""

    def __init__(
        self,
        grid: LightGrid,
        *,
        local_policy: Union[str, QueuePolicy] = "fifo",
        allocator: Optional[MoldableAllocator] = None,
        best_effort_enabled: bool = True,
        trace_labels: bool = False,
    ) -> None:
        self.grid = grid
        if isinstance(local_policy, str):
            try:
                policy_cls = QUEUE_POLICIES[local_policy]
            except KeyError:
                raise ValueError(
                    f"unknown queue policy {local_policy!r}; known: {sorted(QUEUE_POLICIES)}"
                ) from None
            self._policy_factory = lambda: policy_cls(allocator)
        else:
            self._policy_factory = lambda: local_policy
        self.best_effort_enabled = best_effort_enabled
        #: Build per-event label strings (debugging aid; off on the fast path).
        self.trace_labels = trace_labels

    # -- main entry point ---------------------------------------------------------
    def run(
        self,
        local_jobs: Mapping[str, Sequence[Job]],
        grid_bags: Sequence[ParametricSweep] = (),
    ) -> GridSimulationResult:
        """Run the simulation.

        Parameters
        ----------
        local_jobs:
            Mapping from cluster name to the list of jobs submitted locally on
            that cluster.
        grid_bags:
            Multi-parametric bags submitted to the central server.
        """

        unknown = [name for name in local_jobs if name not in self.grid.cluster_names]
        if unknown:
            raise ValueError(f"local jobs reference unknown clusters: {unknown}")

        sim = Simulator(trace_labels=self.trace_labels)
        labels = self.trace_labels
        trace = Trace()
        server = GridServer(grid_bags if self.best_effort_enabled else [])

        pools: Dict[str, ProcessorPool] = {}
        queues: Dict[str, List[Job]] = {}
        policies: Dict[str, QueuePolicy] = {}
        schedules: Dict[str, Schedule] = {}
        busy_work: Dict[str, float] = {}
        for cluster in self.grid:
            pools[cluster.name] = ProcessorPool(cluster.processor_count)
            queues[cluster.name] = []
            policies[cluster.name] = self._policy_factory()
            schedules[cluster.name] = Schedule(cluster.processor_count)
            busy_work[cluster.name] = 0.0

        # ----------------------------------------------------------------- helpers
        def fill_best_effort(cluster_name: str) -> None:
            """Give every idle processor of the cluster a best-effort run."""

            if not self.best_effort_enabled:
                return
            pool = pools[cluster_name]
            while pool.free_count(sim.now) > 0:
                run = server.next_run()
                if run is None:
                    return
                lease_name = f"be:{run.name}"
                state = {"cancelled": False}

                def on_preempt(_procs, run=run, state=state, cluster_name=cluster_name) -> None:
                    # Killed by a local job: resubmit and cancel the completion.
                    state["cancelled"] = True
                    trace.record(sim.now, "kill", run.name, cluster=cluster_name)
                    server.resubmit(run)
                    trace.record(sim.now, "resubmit", run.name, cluster=cluster_name)
                    # The resubmitted run may find room on another cluster that
                    # currently has no pending event: wake them all up.
                    sim.schedule(
                        0.0,
                        lambda: [fill_best_effort(c.name) for c in self.grid],
                        priority=2,
                        label="refill after kill" if labels else "",
                    )

                processors = pool.try_acquire(
                    lease_name, 1, now=sim.now, preemptible=True, on_preempt=on_preempt
                )
                if processors is None:
                    return
                server.launches += 1
                trace.record(sim.now, "start", run.name,
                             cluster=cluster_name, processors=processors, info="best-effort")
                speed = self.grid.cluster(cluster_name).machines[0].speed
                duration = run.bag.run_time / speed

                def complete(run=run, lease_name=lease_name, state=state,
                             cluster_name=cluster_name, duration=duration) -> None:
                    if state["cancelled"]:
                        return
                    pools[cluster_name].release(lease_name)
                    busy_work[cluster_name] += duration
                    trace.record(sim.now, "complete", run.name,
                                 cluster=cluster_name, info="best-effort")
                    server.complete(run, sim.now)
                    fill_best_effort(cluster_name)

                sim.schedule(duration, complete,
                             label=f"complete {run.name}" if labels else "")

        def try_start_local(cluster_name: str) -> None:
            pool = pools[cluster_name]
            queue = queues[cluster_name]
            policy = policies[cluster_name]
            cluster = self.grid.cluster(cluster_name)
            if not queue:
                fill_best_effort(cluster_name)
                return
            free_plus_preemptible = pool.free_count(sim.now) + len(pool.preemptible_processors())
            decisions = policy.select(tuple(queue), free_plus_preemptible, sim.now,
                                      cluster.processor_count)
            for job, nbproc in decisions:
                processors = pool.try_acquire(
                    job.name, nbproc, now=sim.now, allow_preemption=True
                )
                if processors is None:
                    continue
                queue.remove(job)
                speed = cluster.machines[0].speed
                runtime = job.runtime(nbproc) / speed
                schedules[cluster_name].add(job, sim.now, processors, runtime)
                busy_work[cluster_name] += runtime * nbproc
                trace.record(sim.now, "start", job.name,
                             cluster=cluster_name, processors=processors, info="local")

                def complete(job=job, cluster_name=cluster_name) -> None:
                    pools[cluster_name].release(job.name)
                    trace.record(sim.now, "complete", job.name,
                                 cluster=cluster_name, info="local")
                    try_start_local(cluster_name)

                sim.schedule(runtime, complete,
                             label=f"complete {job.name}" if labels else "")
            fill_best_effort(cluster_name)

        def submit_local(cluster_name: str, job: Job) -> None:
            trace.record(sim.now, "submit", job.name, cluster=cluster_name, info="local")
            queues[cluster_name].append(job)
            try_start_local(cluster_name)

        # ------------------------------------------------------------- submissions
        for cluster_name, jobs in local_jobs.items():
            for job in sorted(jobs, key=lambda j: (j.release_date, j.name)):
                sim.schedule_at(
                    job.release_date,
                    lambda cluster_name=cluster_name, job=job: submit_local(cluster_name, job),
                    label=f"submit {job.name}" if labels else "",
                )
        # Kick off best-effort filling at time 0 on every cluster.
        for cluster in self.grid:
            sim.schedule(0.0, lambda name=cluster.name: fill_best_effort(name),
                         priority=1, label=f"fill {cluster.name}" if labels else "")

        sim.run()
        horizon = sim.now

        for cluster_name, queue in queues.items():
            if queue:
                raise SchedulerError(
                    f"cluster {cluster_name!r} finished with {len(queue)} local jobs queued"
                )

        local_criteria = {}
        utilization = {}
        for cluster in self.grid:
            schedules[cluster.name].validate(check_release_dates=True)
            local_criteria[cluster.name] = CriteriaReport.from_schedule(schedules[cluster.name])
            denom = cluster.processor_count * horizon
            utilization[cluster.name] = busy_work[cluster.name] / denom if denom > 0 else 0.0

        return GridSimulationResult(
            local_schedules=schedules,
            local_criteria=local_criteria,
            bag_completion=dict(server.bag_completion),
            runs_completed=dict(server.completed),
            kills=server.kills,
            launches=server.launches,
            horizon=horizon,
            trace=trace,
            utilization=utilization,
        )
