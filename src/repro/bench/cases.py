"""Benchmark case registry.

Each :class:`BenchCase` wraps one representative scenario of the
reproduction behind a uniform interface: a callable that runs the scenario
for a given parameter *tier* (``quick`` for CI smoke runs, ``full`` for
real measurements) and returns a :class:`CaseOutcome` with

* ``events`` / ``cells`` counters (whichever are meaningful for the case),
  from which the runner derives events/sec and cells/sec rates, and
* a ``payload`` -- a deterministic, repr-exact summary of the simulation
  *results* that the runner hashes into a digest.  Two bench runs whose
  digests match produced bit-identical simulation outputs, so a kernel
  optimisation can be validated (same digests) and measured (higher
  events/sec) from the same pair of ``BENCH_*.json`` files.

The registered cases cover the four workload classes named in the paper
reproduction: pure kernel event churn, the Figure-2 bi-criteria cluster
sweep, an on-line cluster simulation, the CIMENT centralized grid of
section 5.2, and a DLT multi-round distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

TIERS = ("quick", "full")


@dataclass
class CaseOutcome:
    """What one execution of a bench case produced."""

    #: Discrete-event count processed during the run (None when the case is
    #: not event-driven, e.g. the Figure-2 schedule construction).
    events: Optional[int] = None
    #: Sweep-cell (or sub-problem) count (None when not a sweep).
    cells: Optional[int] = None
    #: Deterministic result summary; hashed by the runner into the digest
    #: that proves bit-identical simulation outputs across kernel changes.
    payload: Any = None


@dataclass(frozen=True)
class BenchCase:
    """A named, tiered benchmark scenario."""

    name: str
    description: str
    run: Callable[..., CaseOutcome]
    #: Per-tier keyword arguments passed to ``run``.
    params: Mapping[str, Dict[str, Any]]

    def run_tier(self, tier: str) -> CaseOutcome:
        if tier not in self.params:
            raise KeyError(f"case {self.name!r} has no {tier!r} tier")
        return self.run(**self.params[tier])


REGISTRY: Dict[str, BenchCase] = {}


def register(case: BenchCase) -> BenchCase:
    if case.name in REGISTRY:
        raise ValueError(f"duplicate bench case {case.name!r}")
    for tier in case.params:
        if tier not in TIERS:
            raise ValueError(f"case {case.name!r} declares unknown tier {tier!r}")
    REGISTRY[case.name] = case
    return case


def get_cases(names: Optional[List[str]] = None) -> List[BenchCase]:
    """Resolve case names (all registered cases when ``names`` is None)."""

    if names is None:
        return list(REGISTRY.values())
    cases = []
    for name in names:
        if name not in REGISTRY:
            raise KeyError(
                f"unknown bench case {name!r}; known: {sorted(REGISTRY)}"
            )
        cases.append(REGISTRY[name])
    return cases


# ---------------------------------------------------------------------------
# kernel.churn -- pure event-queue churn, the kernel microbenchmark
# ---------------------------------------------------------------------------


def _run_kernel_churn(n_events: int, chains: int = 64) -> CaseOutcome:
    """Self-rescheduling timer chains hammering the event queue.

    ``chains`` concurrent callbacks each reschedule themselves with seeded
    pseudo-random delays quantised to 0.25 time units, so many events tie on
    the same timestamp and the (time, priority, seq) tie-break, cancellation
    and same-time dispatch paths are all exercised.  Every chain also
    schedules-and-cancels a decoy event each step.
    """

    from repro.simulation.engine import Simulator

    sim = Simulator()
    rng = random.Random(20040426)
    delays = [round(rng.random() * 16.0) * 0.25 + 0.25 for _ in range(1024)]
    per_chain = n_events // chains
    checksum: List[float] = []
    fired = [0]

    def make_chain(index: int) -> Callable[[], None]:
        remaining = [per_chain]

        def tick() -> None:
            fired[0] += 1
            if fired[0] % 97 == 0:
                checksum.append(sim.now)
            remaining[0] -= 1
            if remaining[0] > 0:
                slot = (index * 31 + remaining[0]) % 1024
                decoy = sim.schedule(delays[(slot + 7) % 1024], _never)
                sim.cancel(decoy)
                sim.schedule(delays[slot], tick, priority=index % 3)

        return tick

    def _never() -> None:  # cancelled decoys must not fire
        raise AssertionError("cancelled event fired")

    for index in range(chains):
        sim.schedule(delays[index % 1024], make_chain(index), priority=index % 3)
    sim.run()
    return CaseOutcome(
        events=sim.processed_events,
        payload={
            "now": repr(sim.now),
            "fired": fired[0],
            "checksum": [repr(v) for v in checksum],
        },
    )


register(
    BenchCase(
        name="kernel.churn",
        description="pure event-queue churn (self-rescheduling timer chains)",
        run=_run_kernel_churn,
        params={"quick": {"n_events": 60_000}, "full": {"n_events": 400_000}},
    )
)


# ---------------------------------------------------------------------------
# cluster.figure2 -- the Figure-2 bi-criteria sweep through the harness
# ---------------------------------------------------------------------------


def _run_figure2_sweep(task_counts: Tuple[int, ...], repetitions: int) -> CaseOutcome:
    from repro.experiments.figure2 import Figure2Config, run_figure2

    config = Figure2Config(task_counts=task_counts, repetitions=repetitions)
    # Pin the serial executor: a REPRO_JOBS setting in the environment would
    # otherwise fan the sweep out and make timings incomparable to baselines.
    points = run_figure2(config, executor="serial")
    payload = [
        (p.family, p.n_tasks, p.seed, repr(p.wici_ratio), repr(p.cmax_ratio))
        for p in points
    ]
    return CaseOutcome(cells=len(points), payload=payload)


register(
    BenchCase(
        name="cluster.figure2",
        description="Figure-2 bi-criteria sweep (both families) via the harness",
        run=_run_figure2_sweep,
        params={
            "quick": {"task_counts": (50, 100), "repetitions": 1},
            "full": {"task_counts": (50, 100, 200, 400), "repetitions": 3},
        },
    )
)


# ---------------------------------------------------------------------------
# cluster.online -- event-driven single-cluster simulation
# ---------------------------------------------------------------------------


def _run_cluster_online(n_jobs: int, machine_count: int = 64) -> CaseOutcome:
    from repro.simulation.cluster_sim import ClusterSimulator
    from repro.workload.communities import community_workload

    jobs = community_workload(
        "computer-science", n_jobs, machine_count, random_state=7
    )
    result = ClusterSimulator(machine_count, policy="backfill").run(jobs)
    payload = {
        "makespan": repr(result.criteria.makespan),
        "trace": [
            (repr(e.time), e.kind, e.job, e.processors) for e in result.trace
        ],
    }
    return CaseOutcome(events=len(result.trace), payload=payload)


register(
    BenchCase(
        name="cluster.online",
        description="on-line cluster simulation (backfill queue policy)",
        run=_run_cluster_online,
        params={"quick": {"n_jobs": 300}, "full": {"n_jobs": 2000}},
    )
)


# ---------------------------------------------------------------------------
# grid.ciment -- the centralized CIMENT light grid of section 5.2
# ---------------------------------------------------------------------------


def _run_ciment_grid(jobs_per_community: int) -> CaseOutcome:
    from repro.platform.ciment import ciment_grid
    from repro.simulation.grid_sim import CentralizedGridSimulator
    from repro.workload.communities import community_workload, grid_workload

    grid = ciment_grid()
    local = {}
    bags = []
    for index, cluster in enumerate(sorted(grid, key=lambda c: c.name)):
        local[cluster.name] = community_workload(
            cluster.community,
            jobs_per_community,
            cluster.processor_count,
            random_state=100 + index,
        )
        bags.extend(grid_workload(cluster.community, random_state=200 + index))
    result = CentralizedGridSimulator(grid, local_policy="backfill").run(local, bags)
    payload = {
        "horizon": repr(result.horizon),
        "kills": result.kills,
        "launches": result.launches,
        "runs_completed": sorted(result.runs_completed.items()),
        "trace": [
            (repr(e.time), e.kind, e.job, e.cluster, e.processors, e.info)
            for e in result.trace
        ],
    }
    return CaseOutcome(events=len(result.trace), payload=payload)


register(
    BenchCase(
        name="grid.ciment",
        description="centralized CIMENT grid (best-effort fill, kills, resubmits)",
        run=_run_ciment_grid,
        params={"quick": {"jobs_per_community": 12}, "full": {"jobs_per_community": 40}},
    )
)


# ---------------------------------------------------------------------------
# dlt.multiround -- divisible-load multi-round distribution
# ---------------------------------------------------------------------------


def _run_dlt_multiround(total_load: float, n_workers: int, max_rounds: int) -> CaseOutcome:
    from repro.core.dlt.multiround import optimize_round_count
    from repro.core.dlt.platform import DLTPlatform, DLTWorker

    workers = [
        DLTWorker(
            name=f"w{i:03d}",
            compute_time=1.0 + 0.07 * (i % 5),
            comm_time=0.01 + 0.003 * (i % 7),
            latency=0.05 * (i % 3),
        )
        for i in range(n_workers)
    ]
    platform = DLTPlatform(workers)
    best = optimize_round_count(total_load, platform, max_rounds=max_rounds)
    payload = {
        "rounds": best.rounds,
        "makespan": repr(best.makespan),
        "round_loads": [repr(v) for v in best.round_loads],
        "idle_time": repr(best.idle_time),
    }
    return CaseOutcome(cells=max_rounds, payload=payload)


register(
    BenchCase(
        name="dlt.multiround",
        description="DLT multi-round distribution, optimized round count",
        run=_run_dlt_multiround,
        params={
            "quick": {"total_load": 500.0, "n_workers": 32, "max_rounds": 12},
            "full": {"total_load": 5000.0, "n_workers": 128, "max_rounds": 16},
        },
    )
)
