"""Worker / platform description shared by the DLT algorithms.

The DLT algorithms use the classical master-worker abstraction: a master
holds the whole load and ``m`` workers process it.  Worker ``i`` is described
by:

* ``compute_time`` -- time to process one unit of load (the inverse of its
  speed);
* ``comm_time`` -- time to ship one unit of load to it (the inverse of the
  bandwidth of its link);
* ``latency`` -- fixed start-up cost of each message sent to it.

A shared *bus* is the special case where every worker has the same
``comm_time`` and zero latency.  Helpers convert the Parallel-Task platform
descriptions of :mod:`repro.platform` into DLT platforms so the grid
experiments can treat each cluster as one "big worker".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.platform.cluster import Cluster
from repro.platform.grid import LightGrid


@dataclass(frozen=True)
class DLTWorker:
    """One worker of a DLT master-worker platform."""

    name: str
    compute_time: float
    comm_time: float = 0.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_time <= 0:
            raise ValueError(f"worker {self.name!r}: compute_time must be > 0")
        if self.comm_time < 0:
            raise ValueError(f"worker {self.name!r}: comm_time must be >= 0")
        if self.latency < 0:
            raise ValueError(f"worker {self.name!r}: latency must be >= 0")

    @property
    def compute_rate(self) -> float:
        """Load units processed per time unit."""

        return 1.0 / self.compute_time


class DLTPlatform:
    """A master and a list of workers."""

    def __init__(self, workers: Sequence[DLTWorker]) -> None:
        if not workers:
            raise ValueError("a DLT platform needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ValueError("duplicate worker names")
        self.workers: List[DLTWorker] = list(workers)

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    def __getitem__(self, index: int) -> DLTWorker:
        return self.workers[index]

    @property
    def total_compute_rate(self) -> float:
        return sum(w.compute_rate for w in self.workers)

    def is_bus(self) -> bool:
        """True when every worker shares the same link characteristics."""

        first = self.workers[0]
        return all(
            abs(w.comm_time - first.comm_time) < 1e-12
            and abs(w.latency - first.latency) < 1e-12
            for w in self.workers
        )

    # -- constructors ------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        n_workers: int,
        *,
        compute_time: float = 1.0,
        comm_time: float = 0.0,
        latency: float = 0.0,
    ) -> "DLTPlatform":
        return cls(
            [
                DLTWorker(f"worker-{i}", compute_time, comm_time, latency)
                for i in range(n_workers)
            ]
        )

    @classmethod
    def from_cluster(cls, cluster: Cluster, *, data_per_unit: float = 1.0) -> "DLTPlatform":
        """One DLT worker per processor of a cluster.

        ``data_per_unit`` converts load units into data volume shipped over
        the cluster interconnect.
        """

        workers = []
        speeds = cluster.processor_speeds()
        comm_time = data_per_unit / cluster.interconnect.bandwidth
        for i, speed in enumerate(speeds):
            workers.append(
                DLTWorker(
                    name=f"{cluster.name}-p{i:04d}",
                    compute_time=1.0 / speed,
                    comm_time=comm_time,
                    latency=cluster.interconnect.latency,
                )
            )
        return cls(workers)

    @classmethod
    def from_grid(cls, grid: LightGrid, *, data_per_unit: float = 1.0) -> "DLTPlatform":
        """One DLT worker per *cluster*: the grid-level view used in section 5.2.

        Each cluster is aggregated into a single worker whose compute rate is
        the sum of its processors' rates; the link is the wide-area link from
        the (arbitrary) first cluster, or the default grid link parameters.
        """

        workers = []
        for cluster in grid:
            rate = cluster.total_compute_rate
            link = grid.link(grid.clusters[0].name, cluster.name) if cluster is not grid.clusters[0] else None
            comm_time = data_per_unit / (link.bandwidth if link else grid.default_bandwidth * 10)
            latency = link.latency if link else 0.0
            workers.append(
                DLTWorker(
                    name=cluster.name,
                    compute_time=1.0 / rate,
                    comm_time=comm_time,
                    latency=latency,
                )
            )
        return cls(workers)
