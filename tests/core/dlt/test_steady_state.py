"""Unit tests of the steady-state (asymptotic throughput) solution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dlt.platform import DLTPlatform, DLTWorker
from repro.core.dlt.steady_state import (
    parametric_completion_rate,
    steady_state_lower_bound_makespan,
    steady_state_throughput,
)


class TestSteadyStateThroughput:
    def test_no_communication_full_compute_rate(self):
        platform = DLTPlatform.homogeneous(4, compute_time=0.5, comm_time=0.0)
        solution = steady_state_throughput(platform)
        assert solution.throughput == pytest.approx(8.0)
        assert not solution.saturated

    def test_port_saturation_limits_throughput(self):
        # Each worker needs 0.5 time of communication per unit: the one-port
        # master cannot feed more than 2 units per time unit regardless of the
        # number of workers.
        platform = DLTPlatform.homogeneous(16, compute_time=1.0, comm_time=0.5)
        solution = steady_state_throughput(platform)
        assert solution.throughput == pytest.approx(2.0)
        assert solution.saturated
        assert solution.port_usage == pytest.approx(1.0)

    def test_bandwidth_centric_priority(self):
        # The fast-link worker is served first even though it computes slowly.
        workers = [
            DLTWorker("fastlink-slowcpu", compute_time=2.0, comm_time=0.1),
            DLTWorker("slowlink-fastcpu", compute_time=0.25, comm_time=1.0),
        ]
        solution = steady_state_throughput(DLTPlatform(workers))
        assert solution.rate_of("fastlink-slowcpu") == pytest.approx(0.5)
        # Remaining port capacity: 1 - 0.5*0.1 = 0.95 -> rate 0.95 for the other.
        assert solution.rate_of("slowlink-fastcpu") == pytest.approx(0.95)

    def test_throughput_never_exceeds_compute_capacity(self):
        platform = DLTPlatform.homogeneous(3, compute_time=1.0, comm_time=0.05)
        solution = steady_state_throughput(platform)
        assert solution.throughput <= platform.total_compute_rate + 1e-9

    def test_lower_bound_makespan(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.0)
        assert steady_state_lower_bound_makespan(100.0, platform) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            steady_state_lower_bound_makespan(-1.0, platform)


class TestParametricCompletionRate:
    def test_matches_manual_scaling(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.0)
        # Each run takes 2 time units -> 4 workers complete 2 runs per time unit.
        assert parametric_completion_rate(2.0, platform) == pytest.approx(2.0)

    def test_data_volume_throttles_rate(self):
        platform = DLTPlatform.homogeneous(8, compute_time=1.0, comm_time=1.0)
        unthrottled = parametric_completion_rate(1.0, platform, data_per_run=0.0)
        throttled = parametric_completion_rate(1.0, platform, data_per_run=1.0)
        assert throttled < unthrottled

    def test_invalid_run_time(self):
        with pytest.raises(ValueError):
            parametric_completion_rate(0.0, DLTPlatform.homogeneous(2))


@settings(max_examples=40, deadline=None)
@given(
    compute_times=st.lists(st.floats(min_value=0.05, max_value=5.0), min_size=1, max_size=10),
    comm=st.floats(min_value=0.0, max_value=2.0),
)
def test_steady_state_respects_both_resource_constraints(compute_times, comm):
    """Property: the returned rates satisfy the worker and port constraints."""

    workers = [DLTWorker(f"w{i}", ct, comm) for i, ct in enumerate(compute_times)]
    platform = DLTPlatform(workers)
    solution = steady_state_throughput(platform)
    port = 0.0
    for worker in workers:
        rate = solution.rate_of(worker.name)
        assert rate >= -1e-12
        assert rate <= worker.compute_rate + 1e-9     # worker not overloaded
        port += rate * worker.comm_time
    assert port <= 1.0 + 1e-9                          # master port not overloaded
    assert solution.throughput == pytest.approx(
        sum(solution.rates.values()), rel=1e-9
    )
