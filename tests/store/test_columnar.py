"""Columnar store: bit-identity, dedup, atomic manifest, reopen continuity."""

from __future__ import annotations

import json

import pytest

from repro.experiments.grid import CellOutcome, expand_grid
from repro.store.columnar import (
    META_COLUMNS,
    CampaignStore,
    default_format,
    normalize_columns,
    promote_scalars,
)


def has_pyarrow():
    try:
        import pyarrow  # noqa: F401

        return True
    except ImportError:
        return False


def outcome_for(cell, metrics):
    return CellOutcome(cell=cell, metrics=metrics, elapsed_seconds=0.5)


class TestRoundTrip:
    def test_rows_come_back_bit_identical(self, tmp_path):
        store = CampaignStore(tmp_path / "s", campaign="c1")
        rows = [
            {"experiment": "e", "seed": 1, "x": 0.1 + 0.2, "label": "a,b\n\"q\""},
            {"experiment": "e", "seed": 2, "x": 1e-300, "nested": {"k": [1, None]}},
            {"experiment": "e", "seed": 3, "error": "Traceback:\n  boom\r\n"},
        ]
        for row in rows:
            assert store.append_row(row, scenario="sc")
        store.flush()
        assert CampaignStore(tmp_path / "s").rows() == rows

    def test_write_replay_matches_cache_codec(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        (cell,) = expand_grid({"n": [4]}, repetitions=1, base_seed=9)
        metrics = {"ratio": 2.4650798028323913, "family": "parallel"}
        assert store.write("fig2", cell, outcome_for(cell, metrics), "v1")
        store.flush()
        replayed = CampaignStore(tmp_path / "s").replay("fig2", cell, "v1")
        assert replayed is not None
        assert replayed.metrics == metrics
        assert replayed.cached is True
        assert CampaignStore(tmp_path / "s").replay("fig2", cell, "v2") is None

    def test_non_replayable_rows_are_skipped_not_stored(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        (cell,) = expand_grid({}, repetitions=1)
        rich = CellOutcome(cell=cell, metrics={"payload": {("tuple", 1)}})
        assert store.write("e", cell, rich, "v") is False
        assert store.stats.skipped == 1
        # NaN does not survive a JSON round-trip *unchanged* (NaN != NaN).
        assert store.append_row({"bad": float("nan")}, scenario="sc") is False
        assert store.stats.skipped == 2
        store.flush()
        assert len(CampaignStore(tmp_path / "s")) == 0


class TestDedup:
    def test_same_key_same_campaign_is_dropped(self, tmp_path):
        store = CampaignStore(tmp_path / "s", campaign="c")
        (cell,) = expand_grid({"n": [1]}, repetitions=1)
        outcome = outcome_for(cell, {"v": 1.0})
        assert store.write("e", cell, outcome, "v1") is True
        assert store.write("e", cell, outcome, "v1") is False
        assert store.stats.duplicates == 1
        store.flush()
        assert len(store) == 1

    def test_same_key_other_campaign_lands(self, tmp_path):
        (cell,) = expand_grid({"n": [1]}, repetitions=1)
        outcome = outcome_for(cell, {"v": 1.0})
        a = CampaignStore(tmp_path / "s", campaign="a")
        assert a.write("e", cell, outcome, "v1")
        a.flush()
        b = CampaignStore(tmp_path / "s", campaign="b")
        assert b.write("e", cell, outcome, "v1")
        b.flush()
        records = CampaignStore(tmp_path / "s").records()
        assert len(records) == 2
        assert records[0]["key"] == records[1]["key"]  # the cross-campaign join key
        assert {r["campaign"] for r in records} == {"a", "b"}

    def test_dedup_survives_reopen(self, tmp_path):
        (cell,) = expand_grid({"n": [1]}, repetitions=1)
        outcome = outcome_for(cell, {"v": 1.0})
        first = CampaignStore(tmp_path / "s", campaign="c")
        assert first.write("e", cell, outcome, "v1")
        first.flush()
        reopened = CampaignStore(tmp_path / "s", campaign="c")
        assert reopened.write("e", cell, outcome, "v1") is False


class TestIndexing:
    def test_row_index_continues_across_reopen(self, tmp_path):
        first = CampaignStore(tmp_path / "s", campaign="c")
        for value in (1, 2):
            first.append_row({"experiment": "e", "seed": value, "v": value}, scenario="sc")
        first.flush()
        second = CampaignStore(tmp_path / "s", campaign="c")
        second.append_row({"experiment": "e", "seed": 3, "v": 3}, scenario="sc")
        second.flush()
        indices = [r["row_index"] for r in CampaignStore(tmp_path / "s").records()]
        assert indices == [0, 1, 2]

    def test_records_ordered_across_part_files(self, tmp_path):
        store = CampaignStore(tmp_path / "s", campaign="c", flush_rows=1)
        for value in range(5):
            store.append_row({"experiment": "e", "seed": value, "v": value}, scenario="sc")
        store.flush()
        fresh = CampaignStore(tmp_path / "s")
        assert len(fresh.partitions()) == 5  # one part per auto-flush
        assert [r["v"] for r in fresh.rows()] == [0, 1, 2, 3, 4]


class TestManifestAtomicity:
    def test_orphan_part_files_are_invisible(self, tmp_path):
        store = CampaignStore(tmp_path / "s", campaign="c", fmt="jsonl")
        store.append_row({"experiment": "e", "seed": 1, "v": 1}, scenario="sc")
        store.flush()
        # A crash after writing a part but before the manifest replace
        # leaves an orphan file; readers must not see it.
        orphan = tmp_path / "s" / "campaign=c" / "scenario=sc" / "fingerprint=none" / "part-09999.jsonl"
        orphan.write_text(json.dumps({"campaign": "c", "scenario": "sc",
                                      "row_index": 99, "row_json": "{}"}) + "\n")
        fresh = CampaignStore(tmp_path / "s")
        assert len(fresh) == 1
        assert len(fresh.records()) == 1

    def test_unflushed_buffers_are_invisible(self, tmp_path):
        store = CampaignStore(tmp_path / "s", campaign="c")
        store.append_row({"experiment": "e", "seed": 1, "v": 1}, scenario="sc")
        assert CampaignStore(tmp_path / "s").records() == []
        store.flush()
        assert len(CampaignStore(tmp_path / "s").records()) == 1

    def test_corrupt_manifest_reads_as_empty(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "manifest.json").write_text('{"partitions": [')
        assert CampaignStore(root).partitions() == []

    def test_context_manager_flushes(self, tmp_path):
        with CampaignStore(tmp_path / "s", campaign="c") as store:
            store.append_row({"experiment": "e", "seed": 1, "v": 1}, scenario="sc")
        assert len(CampaignStore(tmp_path / "s")) == 1


class TestPromotion:
    def test_promote_scalars_drops_meta_and_rich_values(self):
        row = {"experiment": "e", "seed": 1, "policy": "lpt", "ratio": 1.5,
               "key": "collides-with-meta", "outcome": [1, 2], "flag": True}
        promoted = promote_scalars(row)
        assert promoted == {"policy": "lpt", "ratio": 1.5, "flag": True}
        assert "experiment" not in promoted and "key" not in promoted

    def test_normalize_columns_widens_and_stringifies(self):
        records = [{"a": 1, "b": 1}, {"a": 2.5, "b": "oops"}, {"a": None, "b": None}]
        normalize_columns(records, ["a", "b"])
        assert records[0]["a"] == 1.0 and isinstance(records[0]["a"], float)
        assert records[0]["b"] == "1" and records[1]["b"] == "oops"
        assert records[2] == {"a": None, "b": None}

    def test_meta_columns_cover_the_record_keys(self, tmp_path):
        store = CampaignStore(tmp_path / "s", campaign="c")
        store.append_row({"experiment": "e", "seed": 1, "metric": 2.0}, scenario="sc")
        store.flush()
        (record,) = CampaignStore(tmp_path / "s").records()
        assert set(META_COLUMNS) <= set(record)
        assert record["metric"] == 2.0


class TestFormats:
    def test_default_format_matches_pyarrow_presence(self):
        assert default_format() == ("parquet" if has_pyarrow() else "jsonl")

    def test_explicit_jsonl_always_works(self, tmp_path):
        store = CampaignStore(tmp_path / "s", fmt="jsonl")
        store.append_row({"experiment": "e", "seed": 1, "v": 1}, scenario="sc")
        store.flush()
        (part,) = store.partitions()
        assert part.format == "jsonl"
        assert part.path.endswith(".jsonl")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignStore(tmp_path / "s", fmt="orc")

    @pytest.mark.skipif(not has_pyarrow(), reason="pyarrow not installed")
    def test_parquet_part_round_trips(self, tmp_path):
        store = CampaignStore(tmp_path / "s", fmt="parquet")
        rows = [{"experiment": "e", "seed": 1, "x": 0.30000000000000004}]
        store.append_row(rows[0], scenario="sc")
        store.flush()
        assert CampaignStore(tmp_path / "s").rows() == rows
