"""Reservation-aware scheduling (section 5.1, "Reservations").

"An important point for a management system is the ability to perform
reservations.  This would allow a user to ask for a given number of
processors in a given time window.  [...] The scheduling algorithm must then
cope with this additional constraint, which makes a certain number of nodes
unavailable during a period of time."

The paper notes that fully integrating reservations into the batch algorithms
is difficult ("a batch algorithm could try to ensure that batch boundaries
match the beginning and the end of the reservations, but that would likely be
inefficient").  The implementation below takes the pragmatic route used by
production systems: jobs are scheduled by conservative backfilling against an
availability profile from which the reserved blocks have been removed.  Any
rigid/moldable mix is supported through the usual allocation step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.allocation import Reservation, Schedule
from repro.core.job import Job, validate_jobs
from repro.core.policies.backfilling import AvailabilityProfile
from repro.core.policies.base import (
    MoldableAllocator,
    ReleaseDateScheduler,
    SchedulerError,
)


class ReservationAwareScheduler(ReleaseDateScheduler):
    """Conservative backfilling around a set of advance reservations."""

    def __init__(
        self,
        reservations: Sequence[Reservation] = (),
        allocator: Optional[MoldableAllocator] = None,
    ) -> None:
        self.reservations = tuple(reservations)
        self.allocator = allocator or MoldableAllocator("bounded_efficiency")
        self.name = "reservation-aware"

    def schedule(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        jobs = validate_jobs(jobs)
        for reservation in self.reservations:
            for p in reservation.processors:
                if not 0 <= p < machine_count:
                    raise SchedulerError(
                        f"reservation {reservation.label!r} references processor {p} "
                        f"outside the platform"
                    )
        schedule = Schedule(machine_count, reservations=self.reservations)
        if not jobs:
            return schedule

        profile = AvailabilityProfile(machine_count)
        for reservation in self.reservations:
            profile.book(
                reservation.start,
                reservation.end - reservation.start,
                len(reservation.processors),
            )

        # Per-processor busy intervals, pre-seeded with the reservations so
        # concrete processor choices avoid the reserved blocks.
        busy: List[List[Tuple[float, float]]] = [[] for _ in range(machine_count)]
        for reservation in self.reservations:
            for p in reservation.processors:
                busy[p].append((reservation.start, reservation.end))

        def processors_free(start: float, end: float) -> List[int]:
            free = []
            for p in range(machine_count):
                if all(end <= s + 1e-12 or start >= e - 1e-12 for (s, e) in busy[p]):
                    free.append(p)
            return free

        for job in sorted(jobs, key=lambda j: (j.release_date, j.name)):
            nbproc = self.allocator.allocate(job, machine_count)
            duration = job.runtime(nbproc)
            start = job.release_date
            # The profile gives a candidate start; because reservations pin
            # *specific* processors (not just a count) the candidate is then
            # verified against the concrete per-processor intervals and pushed
            # later if needed.
            for _ in range(10_000):
                start = profile.earliest_fit(start, nbproc, duration)
                candidates = processors_free(start, start + duration)
                if len(candidates) >= nbproc:
                    break
                start = start + max(duration * 0.01, 1e-6)
            else:  # pragma: no cover - defensive guard
                raise SchedulerError(f"could not place job {job.name!r} around reservations")
            chosen = candidates[:nbproc]
            profile.book(start, duration, nbproc)
            for p in chosen:
                busy[p].append((start, start + duration))
            schedule.add(job, start, chosen, duration)
        return schedule
