"""GRID-DECENTRAL: the decentralized organisation of section 5.2.

Compares, on the same imbalanced workload (one community submits much more
work than its own cluster can absorb), three organisations:

* **isolated** -- no cooperation between clusters (exchange disabled);
* **decentralized** -- the load-threshold work-exchange protocol;
* different imbalance thresholds, to show the trade-off between reactivity
  (better mean flow) and the number of migrations.

The three organisations run as cells of the parallel sweep harness.  Shape
assertions: the exchange strictly reduces the mean flow time of the
overloaded community without increasing the global makespan, and the number
of migrations decreases as the threshold grows.
"""

from __future__ import annotations


from repro.experiments.reporting import ascii_table
from repro.platform.generators import homogeneous_cluster
from repro.platform.grid import GridLink, LightGrid
from repro.simulation.decentralized import DecentralizedGridSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs

ORGANISATIONS = ("isolated", "exchange(t=1)", "exchange(t=4)")


def build_grid():
    return LightGrid(
        "decentralized-grid",
        [homogeneous_cluster("overloaded", 16, community="busy-community"),
         homogeneous_cluster("spare-a", 16, community="spare-a-community"),
         homogeneous_cluster("spare-b", 8, community="spare-b-community")],
        [GridLink("overloaded", "spare-a", bandwidth=500.0, latency=0.01),
         GridLink("overloaded", "spare-b", bandwidth=200.0, latency=0.05)],
    )


def build_submissions():
    heavy = generate_moldable_jobs(60, 16, random_state=5, name_prefix="busy")
    heavy = poisson_arrivals(heavy, rate=4.0, random_state=5)
    light = generate_moldable_jobs(6, 16, random_state=6, name_prefix="spare")
    light = poisson_arrivals(light, rate=0.2, random_state=6)
    return {"overloaded": heavy, "spare-a": light, "spare-b": []}


def make_simulator(grid, organisation):
    if organisation == "isolated":
        return DecentralizedGridSimulator(grid, exchange_enabled=False)
    if organisation == "exchange(t=1)":
        return DecentralizedGridSimulator(grid, imbalance_threshold=1.0)
    if organisation == "exchange(t=4)":
        return DecentralizedGridSimulator(grid, imbalance_threshold=4.0)
    raise ValueError(f"unknown organisation {organisation!r}")


def run_decentralized_cell(seed, organisation):
    """One cell: one organisation on the shared imbalanced workload."""

    grid = build_grid()
    result = make_simulator(grid, organisation).run(build_submissions())
    return {
        "mean_flow": result.mean_flow,
        "max_flow": result.max_flow,
        "makespan": result.makespan,
        "migrations": result.migrations,
        "fairness_work": result.fairness.fairness_on_work,
        "jobs_scheduled": sum(len(schedule) for schedule in result.schedules.values()),
    }


def test_decentralized_exchange(run_sweep, report):
    result = run_sweep("grid-decentralized", run_decentralized_cell,
                       {"organisation": ORGANISATIONS})
    rows = result.rows
    report("GRID-DECENTRAL: isolated clusters vs load exchange",
           ascii_table([{key: row[key] for key in
                         ("organisation", "mean_flow", "max_flow", "makespan",
                          "migrations", "fairness_work")}
                        for row in rows]))

    by_organisation = {row["organisation"]: row for row in rows}
    isolated = by_organisation["isolated"]
    aggressive = by_organisation["exchange(t=1)"]
    conservative = by_organisation["exchange(t=4)"]

    # Every organisation completes the whole workload.
    for row in rows:
        assert row["jobs_scheduled"] == 66
    # Exchanging work strictly improves the mean response time of the
    # overloaded workload and does not hurt the global makespan.
    assert aggressive["mean_flow"] < isolated["mean_flow"]
    assert aggressive["makespan"] <= isolated["makespan"] + 1e-9
    # A lower threshold reacts more (at least as many migrations).
    assert aggressive["migrations"] >= conservative["migrations"]
    assert aggressive["migrations"] > 0
