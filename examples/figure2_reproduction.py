#!/usr/bin/env python3
"""Reproduce Figure 2 of the paper from the command line.

Runs the bi-criteria simulation on a 100-machine cluster for the two workload
families ("Non Parallel" and "Parallel"), prints the two ratio curves as text
tables and ASCII plots, and writes the raw points to
``examples/out/figure2_points.csv`` for external plotting (generated outputs
stay out of the repository root, which is git-ignored for CSVs).

The experiment itself is declared by the registered ``fig2.bicriteria``
scenario (see ``python -m repro.scenarios describe fig2.bicriteria``); this
script only picks the sweep size and renders the curves.

Run with:  python examples/figure2_reproduction.py [--quick]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.figure2 import figure2_curves, points_from_rows
from repro.experiments.reporting import ascii_plot, ascii_table, to_csv
from repro.scenarios import get, run_scenario


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for a fast demo)")
    default_output = Path(__file__).resolve().parent / "out" / "figure2_points.csv"
    parser.add_argument("--output", default=str(default_output),
                        help="CSV file for the raw simulation points "
                             "(default: examples/out/figure2_points.csv)")
    args = parser.parse_args(argv)

    spec = get("fig2.bicriteria")
    if args.quick:
        spec = spec.evolve(repetitions=1, sweep={
            "workload.family": ["non_parallel", "parallel"],
            "workload.n_tasks": [50, 200, 600],
        })
    task_counts = spec.sweep["workload.n_tasks"]
    families = spec.sweep["workload.family"]

    print(f"Simulating {len(task_counts)} task counts x {len(families)} "
          f"families x {spec.repetitions} seeds (scenario {spec.name!r})...")
    result = run_scenario(spec)
    points = points_from_rows(result.rows)
    curves = figure2_curves(points)

    for criterion, label in (("wici", "sum w_i C_i ratio (Figure 2, top)"),
                             ("cmax", "Cmax ratio (Figure 2, bottom)")):
        rows = [
            {
                "n_tasks": n,
                "non_parallel": curves[criterion]["non_parallel"][n],
                "parallel": curves[criterion]["parallel"][n],
            }
            for n in task_counts
        ]
        print()
        print(ascii_table(rows, title=label))
        print(ascii_plot(
            {"parallel": curves[criterion]["parallel"],
             "non parallel": curves[criterion]["non_parallel"]},
            title=label, x_label="number of tasks",
        ))

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(to_csv([p.as_dict() for p in points]))
    print(f"Raw points written to {output} ({len(points)} rows).")


if __name__ == "__main__":
    main()
