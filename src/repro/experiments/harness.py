"""Generic experiment runner: parameter sweeps with seeded repetitions.

Every benchmark of the repository is a thin wrapper around this harness: it
declares a grid of parameters, a function running one configuration with one
seed and returning a flat ``dict`` of metrics, and the harness takes care of
running the cross product, collecting the rows and aggregating repetitions.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.aggregate import Summary, aggregate_runs, group_by


RunFunction = Callable[..., Mapping[str, Any]]


@dataclass
class ExperimentResult:
    """All rows produced by an experiment plus aggregation helpers."""

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def filter(self, **conditions: Any) -> "ExperimentResult":
        """Rows matching all the given column=value conditions."""

        rows = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in conditions.items())
        ]
        return ExperimentResult(name=self.name, rows=rows, elapsed_seconds=self.elapsed_seconds)

    def column(self, key: str) -> List[Any]:
        return [row[key] for row in self.rows if key in row]

    def aggregate(self, metrics: Optional[Sequence[str]] = None) -> Dict[str, Summary]:
        return aggregate_runs(self.rows, metrics=metrics)

    def grouped_mean(self, group_key: str, metric: str) -> Dict[Any, float]:
        """Mean of ``metric`` for each value of ``group_key`` (sweep curves)."""

        out: Dict[Any, float] = {}
        for value, rows in group_by(self.rows, group_key).items():
            values = [float(r[metric]) for r in rows if metric in r]
            if values:
                out[value] = sum(values) / len(values)
        return out

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ExperimentRunner:
    """Run a function over a parameter grid with repetitions.

    Parameters
    ----------
    name:
        Experiment identifier (stored in every row).
    run:
        Callable invoked as ``run(seed=<int>, **params)``; must return a
        mapping of metric name to value.
    parameters:
        Mapping of parameter name to the list of values to sweep.
    repetitions:
        Number of seeds per parameter combination.
    base_seed:
        Seeds are ``base_seed + repetition_index`` so results are reproducible
        and distinct across repetitions.
    """

    name: str
    run: RunFunction
    parameters: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    repetitions: int = 3
    base_seed: int = 1234

    def execute(self, *, progress: Optional[Callable[[str], None]] = None) -> ExperimentResult:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        start = time.perf_counter()
        result = ExperimentResult(name=self.name)
        keys = sorted(self.parameters)
        combos: Iterable[Tuple[Any, ...]]
        if keys:
            combos = itertools.product(*(self.parameters[k] for k in keys))
        else:
            combos = [()]
        for combo in combos:
            params = dict(zip(keys, combo))
            for repetition in range(self.repetitions):
                seed = self.base_seed + repetition
                if progress is not None:
                    progress(f"{self.name}: {params} seed={seed}")
                metrics = dict(self.run(seed=seed, **params))
                row: Dict[str, Any] = {"experiment": self.name, "seed": seed}
                row.update(params)
                row.update(metrics)
                result.rows.append(row)
        result.elapsed_seconds = time.perf_counter() - start
        return result


def sweep(
    name: str,
    run: RunFunction,
    *,
    repetitions: int = 3,
    base_seed: int = 1234,
    **parameters: Sequence[Any],
) -> ExperimentResult:
    """Convenience wrapper: ``sweep("exp", fn, n_jobs=[10, 100], policy=["a", "b"])``."""

    runner = ExperimentRunner(
        name=name,
        run=run,
        parameters=parameters,
        repetitions=repetitions,
        base_seed=base_seed,
    )
    return runner.execute()
