"""Named queries: py twins against StreamingAggregator, SQL parity via DuckDB."""

from __future__ import annotations

import pytest

from repro.metrics.aggregate import StreamingAggregator
from repro.store.columnar import CampaignStore
from repro.store.queries import (
    QUERIES,
    QueryError,
    get_query,
    quote_ident,
    run_query,
    sql_literal,
)


def has_duckdb():
    try:
        import duckdb  # noqa: F401

        return True
    except ImportError:
        return False


@pytest.fixture()
def seeded_store(tmp_path):
    """Two campaigns of the fig2 smoke scenario landed in one store."""

    from repro.scenarios.composer import run_scenario
    from repro.scenarios.registry import get

    spec = get("fig2.bicriteria")
    root = tmp_path / "store"
    for campaign in ("serial", "rerun"):
        sink = CampaignStore(root, campaign=campaign, fmt="jsonl")
        run_scenario(spec, smoke=True, sink=sink)
    return CampaignStore(root)


class TestGuards:
    def test_quote_ident_rejects_injection(self):
        assert quote_ident("cmax_ratio") == '"cmax_ratio"'
        assert quote_ident("utilization.grappe1") == '"utilization.grappe1"'
        for bad in ('x"; DROP TABLE rows; --', "a b", "", '"', "1x"):
            with pytest.raises(QueryError):
                quote_ident(bad)

    def test_sql_literal_escapes(self):
        assert sql_literal("o'brien") == "'o''brien'"
        assert sql_literal(3) == "3"
        assert sql_literal(True) == "TRUE"

    def test_unknown_query_and_params(self, seeded_store):
        with pytest.raises(QueryError, match="unknown query"):
            get_query("nope")
        with pytest.raises(QueryError, match="needs parameter"):
            get_query("metric-summary").sql()
        with pytest.raises(QueryError, match="does not take"):
            get_query("rows").sql(bogus=1)
        with pytest.raises(QueryError, match="engine"):
            run_query(seeded_store, "rows", engine="spark")

    def test_every_query_builds_sql(self):
        params = {"metric": "cmax_ratio", "campaign_a": "a", "campaign_b": "b"}
        for name, query in QUERIES.items():
            needed = {k: params[k] for k in query.required}
            sql = query.sql(**needed)
            assert "FROM rows" in sql, name


class TestPyEngine:
    def test_rows_query_is_the_bit_identity_channel(self, seeded_store):
        rows = run_query(seeded_store, "rows", {"campaign": "serial"}, engine="py")
        assert rows == seeded_store.rows(campaign="serial")
        assert len(rows) == 2

    def test_metric_summary_matches_streaming_aggregator(self, seeded_store):
        results = run_query(
            seeded_store, "metric-summary",
            {"metric": "cmax_ratio", "campaign": "serial"}, engine="py",
        )
        aggregator = StreamingAggregator()
        for row in seeded_store.rows(campaign="serial"):
            aggregator.update(row)
        expected = aggregator.summaries()["cmax_ratio"].as_dict()
        (result,) = results
        for field, value in expected.items():
            assert result[field] == value, field

    def test_compare_joins_identical_campaigns_as_equal(self, seeded_store):
        results = run_query(
            seeded_store, "compare",
            {"metric": "cmax_ratio", "campaign_a": "serial", "campaign_b": "rerun"},
            engine="py",
        )
        assert len(results) == 2
        assert all(r["equal"] is True for r in results)
        assert all(r["diff"] == 0.0 for r in results)
        assert all(r["a_value"] == r["b_value"] for r in results)

    def test_cell_timing_and_cache_accounting(self, seeded_store):
        (timing,) = run_query(
            seeded_store, "cell-timing", {"campaign": "serial"}, engine="py"
        )
        assert timing["cells"] == 2
        assert timing["total_seconds"] >= timing["max_seconds"] >= 0.0
        (accounting,) = run_query(
            seeded_store, "cache-accounting", {"campaign": "serial"}, engine="py"
        )
        assert accounting["rows"] == 2
        assert accounting["computed"] == 2
        assert accounting["distinct_keys"] == 2

    def test_policy_compare_uses_the_axis_column(self, tmp_path):
        store = CampaignStore(tmp_path / "s", campaign="c", fmt="jsonl")
        for seed, policy, value in ((1, "lpt", 2.0), (1, "wspt", 3.0), (2, "lpt", 4.0)):
            store.append_row(
                {"experiment": "e", "seed": seed, "policy_name": policy, "m": value},
                scenario="sc", seed=seed,
            )
        store.flush()
        results = run_query(store, "policy-compare", {"metric": "m"}, engine="py")
        assert [(r["seed"], r["axis_value"], r["mean"]) for r in results] == [
            (1, "lpt", 2.0), (1, "wspt", 3.0), (2, "lpt", 4.0),
        ]


@pytest.mark.skipif(not has_duckdb(), reason="duckdb not installed")
class TestSqlParity:
    """Every named query returns the same result set on both engines."""

    PARAMS = {
        "rows": {},
        "metric-summary": {"metric": "cmax_ratio"},
        "policy-compare": {"metric": "cmax_ratio", "axis": "family"},
        "compare": {"metric": "cmax_ratio", "campaign_a": "serial", "campaign_b": "rerun"},
        "cell-timing": {},
        "cache-accounting": {},
    }

    @pytest.mark.parametrize("name", sorted(PARAMS))
    def test_sql_matches_py(self, seeded_store, name):
        params = self.PARAMS[name]
        sql_rows = run_query(seeded_store, name, params, engine="sql")
        py_rows = run_query(seeded_store, name, params, engine="py")
        assert len(sql_rows) == len(py_rows)
        for sql_row, py_row in zip(sql_rows, py_rows):
            for field, expected in py_row.items():
                got = sql_row[field]
                if isinstance(expected, float) and expected != int(expected):
                    assert got == pytest.approx(expected, rel=1e-12), (name, field)
                else:
                    assert got == expected or got == pytest.approx(expected), (name, field)
