"""``python -m repro.store`` entry point."""

import sys

from repro.store.cli import main

if __name__ == "__main__":
    sys.exit(main())
