"""A single machine (node) of a cluster.

The paper's platforms are built from "SMP or simple PC machines": a node has
a number of processors (cores) and a speed.  Speeds are *relative*: a speed
of 1.0 is the reference processor; a job whose runtime profile says 10 time
units runs in ``10 / speed`` units on a node of the given speed.  This is the
classical *uniform processors* model the paper mentions for handling
heterogeneity ("The heterogeneity of computational units or communication
links can also be considered by uniform or unrelated processors").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Machine:
    """A physical node.

    Parameters
    ----------
    name:
        Unique name within its cluster (e.g. ``"node-017"``).
    speed:
        Relative processor speed (1.0 = reference).  Execution times of jobs
        are divided by this factor when running on this machine.
    cores:
        Number of processors on the node (2 for the bi-processor CIMENT
        nodes).
    memory_gb:
        Optional memory capacity, used by admission filters in the grid
        simulators (jobs may declare memory constraints that impose a
        minimal number of nodes).
    """

    name: str
    speed: float = 1.0
    cores: int = 1
    memory_gb: Optional[float] = None

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"machine {self.name!r}: speed must be > 0")
        if self.cores < 1:
            raise ValueError(f"machine {self.name!r}: cores must be >= 1")
        if self.memory_gb is not None and self.memory_gb <= 0:
            raise ValueError(f"machine {self.name!r}: memory must be > 0")

    def effective_runtime(self, reference_runtime: float) -> float:
        """Runtime of a task on this machine given its reference runtime."""

        if reference_runtime < 0:
            raise ValueError("reference_runtime must be >= 0")
        return reference_runtime / self.speed

    @property
    def compute_rate(self) -> float:
        """Work units per time unit delivered by the whole node (all cores)."""

        return self.speed * self.cores
