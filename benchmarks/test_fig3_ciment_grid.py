"""FIG3-CIMENT: Figure 3 -- the four largest clusters of the CIMENT project.

Builds the exact platform of Figure 3 (104 bi-Itanium2/Myrinet, 48 bi-Xeon
/GigE, 40 + 24 bi-Athlon/Eth100), generates the per-community workloads of
section 5.2 and runs the centralized best-effort organisation on it.  The
benchmark reports the platform inventory and the per-cluster outcome.

The whole experiment is declared by the registered
``fig3.ciment.centralized`` scenario (platform kind ``ciment``, workload
kind ``ciment-communities``): the benchmark only asserts the shape of the
resulting rows.
"""

from __future__ import annotations


from repro.experiments.reporting import ascii_table
from repro.platform.ciment import CIMENT_CLUSTERS
from repro.scenarios import get

SPEC = get("fig3.ciment.centralized")

#: Community -> cluster mapping of the CIMENT experiments (each cluster is
#: owned by one community, see repro.platform.ciment).
COMMUNITY_CLUSTER = {
    "computer-science": "icluster-itanium",
    "numerical-physics": "xeon-cluster",
    "astrophysics": "athlon-cluster-a",
    "medical-research": "athlon-cluster-b",
}


def test_figure3_ciment_platform_and_simulation(run_scenario_sweep, report):
    result = run_scenario_sweep(SPEC)
    row = result.rows[0]

    inventory = [
        {"cluster": name, "nodes": nodes, "cores/node": cores, "interconnect": net}
        for name, nodes, cores, _speed, net, _bw, _comm in CIMENT_CLUSTERS
    ]
    report(
        "Figure 3: the 4 largest CIMENT clusters",
        ascii_table(inventory) + "\n" + ascii_table(row["outcome"])
        + f"\nbest-effort runs completed: {row['total_runs_completed']}, "
          f"kills: {row['kills']}, launches: {row['launches']}",
    )

    # Platform shape of Figure 3.
    assert row["node_count"] == 216 and row["processor_count"] == 432
    assert set(row["cluster_names"]) == set(COMMUNITY_CLUSTER.values())
    # Every community's local jobs were executed on its own cluster.
    assert all(row["owners_ok"].values())
    # The multi-parametric grid jobs all completed via best-effort filling.
    assert row["total_runs_completed"] == row["expected_runs"]
    # Local jobs are never disturbed: kills only remove best-effort runs,
    # which are resubmitted (launches = runs + kills).
    assert row["launches"] == row["total_runs_completed"] + row["kills"]
