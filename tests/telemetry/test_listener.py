"""SweepListener protocol: lifecycle delivery, legacy-callback shims."""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_experiment
from repro.telemetry import (
    CallbackListener,
    FanoutListener,
    SweepListener,
    listener_with_callbacks,
)


def seeded_value(seed: int, k: int) -> dict:
    return {"value": seed * 10 + k}


class Recorder(SweepListener):
    def __init__(self) -> None:
        self.calls = []

    def on_sweep_start(self, experiment, total_cells):
        self.calls.append(("sweep-start", experiment, total_cells))

    def on_cell_start(self, experiment, cell):
        self.calls.append(("cell-start", cell.index))

    def on_row(self, experiment, cell, row, outcome):
        self.calls.append(("row", cell.index, row["value"]))

    def on_error(self, experiment, cell, outcome):
        self.calls.append(("error", cell.index, outcome.error_type))

    def on_sweep_end(self, experiment, result):
        self.calls.append(("sweep-end", experiment, len(result.rows)))


class TestListenerLifecycle:
    def test_listener_sees_full_lifecycle_in_order(self):
        recorder = Recorder()
        result = run_experiment(
            "lst", seeded_value, {"k": [1, 2]},
            repetitions=1, executor="serial", listener=recorder,
        )
        assert recorder.calls[0] == ("sweep-start", "lst", 2)
        assert recorder.calls[-1] == ("sweep-end", "lst", 2)
        rows = [call for call in recorder.calls if call[0] == "row"]
        assert [row[2] for row in rows] == [row["value"] for row in result.rows]
        starts = [call for call in recorder.calls if call[0] == "cell-start"]
        assert len(starts) == 2

    def test_sweep_end_fires_even_when_a_cell_raises(self):
        def failing(seed: int, k: int) -> dict:
            raise ValueError("boom")

        recorder = Recorder()
        with pytest.raises(Exception):
            run_experiment("bad", failing, {"k": [1]},
                           repetitions=1, executor="serial", listener=recorder)
        assert recorder.calls[-1][0] == "sweep-end"


class TestCallbackListener:
    def test_progress_message_matches_legacy_format(self):
        class Cell:
            def describe(self) -> str:
                return "seed=9 k=1"

        class Outcome:
            cached = False
            elapsed_seconds = 0.1234567

        messages = []
        listener = CallbackListener(progress=messages.append)
        listener.on_row("exp", Cell(), {}, Outcome())
        assert messages == ["exp: seed=9 k=1 [0.123s]"]

        Outcome.cached = True
        listener.on_row("exp", Cell(), {}, Outcome())
        assert messages[-1] == "exp: seed=9 k=1 [cached]"

    def test_error_message_matches_legacy_format(self):
        class Cell:
            def describe(self) -> str:
                return "seed=9"

        class Outcome:
            error_type = "ValueError"

        messages = []
        CallbackListener(progress=messages.append).on_error("exp", Cell(), Outcome())
        assert messages == ["exp: seed=9 FAILED (ValueError)"]


class TestDeprecationShims:
    def test_no_callbacks_returns_listener_unchanged_without_warning(self):
        import warnings

        listener = SweepListener()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert listener_with_callbacks(listener, None, None) is listener
            assert listener_with_callbacks(None, None, None) is None

    def test_callbacks_warn_and_compose_with_listener(self):
        rows = []
        listener = Recorder()
        with pytest.warns(DeprecationWarning, match="progress= and on_row="):
            composed = listener_with_callbacks(listener, None, rows.append)
        assert isinstance(composed, FanoutListener)
        assert composed.listeners[0] is listener

    def test_run_scenario_legacy_kwargs_warn_but_still_deliver(self):
        from repro.scenarios import registry
        from repro.scenarios.composer import run_scenario

        spec = registry.get("cluster.policy-panel")
        rows = []
        with pytest.warns(DeprecationWarning, match="progress= and on_row="):
            result = run_scenario(spec, smoke=True, on_row=rows.append)
        assert rows == result.rows


class TestFanout:
    def test_fanout_filters_none_and_propagates_exceptions(self):
        class Broken(SweepListener):
            def on_sweep_start(self, experiment, total_cells):
                raise RuntimeError("observer bug")

        fanout = FanoutListener([None, Broken()])
        assert len(fanout.listeners) == 1
        with pytest.raises(RuntimeError, match="observer bug"):
            fanout.on_sweep_start("exp", 1)
