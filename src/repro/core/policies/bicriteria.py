"""Bi-criteria scheduling (section 4.4): doubling-deadline batches.

The paper presents the approach of Hall, Schulz, Shmoys and Wein for
optimising the makespan and the sum of weighted completion times *at the same
time*: use a makespan procedure ``A_Cmax`` (performance ratio ``rho_Cmax``)
as a black box that, given a deadline ``d``, schedules within length
``rho_Cmax * d`` "as many tasks as possible (or the maximum weight)".
Running this procedure "iteratively in batches of doubling sizes (d, 2d, 4d,
...)" yields a schedule whose makespan is at most ``4 rho_Cmax * Cmax*`` and
whose sum of weighted completion times is within ``4 rho_Cmax`` of the
optimum.

This is the algorithm whose "simulated implementation of a variation"
produces **Figure 2** of the paper; the :mod:`repro.experiments.figure2`
module drives it exactly as described there (100 machines, parallel and
non-parallel jobs, criteria Cmax and sum w_i C_i).

Implementation notes
--------------------
* The maximum-weight selection of jobs fitting in a deadline is NP-hard in
  general; as in the original article a greedy selection is used: jobs are
  considered in weighted-shortest-processing-time order (weight over minimal
  work) and admitted while the aggregate area fits in ``d * m`` and their
  minimal runtime fits in ``d``.
* Release dates are supported in the natural batch fashion: a job is only
  considered once the current batch start has passed its release date
  (the on-line setting of section 4.4, "independent on-line moldable jobs").
* Each admitted batch is scheduled with a pluggable off-line makespan policy
  (default: the MRT algorithm of section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.allocation import Schedule
from repro.core.bounds import min_runtime, min_work
from repro.core.job import Job, validate_jobs
from repro.core.policies.base import (
    OfflineScheduler,
    ReleaseDateScheduler,
    SchedulerError,
)


@dataclass
class BatchRecord:
    """Bookkeeping of one doubling batch (exposed for tests and reports)."""

    index: int
    start: float
    deadline: float
    jobs: List[str] = field(default_factory=list)
    makespan: float = 0.0


class BiCriteriaScheduler(ReleaseDateScheduler):
    """Doubling-deadline batches for (Cmax, sum w_j C_j) bi-criteria scheduling.

    Parameters
    ----------
    offline:
        Off-line makespan procedure used inside each batch.  ``None`` (the
        default) uses the built-in *deadline-aware* batch builder: every
        selected moldable job receives its canonical allocation
        ``gamma(j, d)`` -- the smallest processor count meeting the current
        deadline ``d`` -- and the resulting rigid jobs are packed with LPT
        list scheduling.  This is the "ACmax procedure" role of the original
        algorithm: it keeps the work inflation minimal while guaranteeing
        that every job of the batch fits within the deadline.  Pass an
        explicit policy (e.g. :class:`~repro.core.policies.mrt.MRTScheduler`)
        to study other inner procedures.
    initial_deadline:
        First deadline ``d``.  When ``None`` it is derived from the instance:
        the smallest minimal runtime of the released jobs, which makes the
        first batches small and therefore favours small high-priority jobs
        (good for the weighted completion time).
    """

    def __init__(
        self,
        offline: Optional[OfflineScheduler] = None,
        *,
        initial_deadline: Optional[float] = None,
    ) -> None:
        self.offline = offline
        if initial_deadline is not None and initial_deadline <= 0:
            raise ValueError("initial_deadline must be > 0")
        self.initial_deadline = initial_deadline
        inner_name = offline.name if offline is not None else "deadline-aware"
        self.name = f"bicriteria({inner_name})"
        #: Records of the batches built by the last call to :meth:`schedule`.
        self.last_batches: List[BatchRecord] = []

    # -- main entry point -------------------------------------------------------
    def schedule(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        jobs = validate_jobs(jobs)
        self.last_batches = []
        if not jobs:
            return Schedule(machine_count)
        remaining: List[Job] = sorted(jobs, key=lambda j: (j.release_date, j.name))
        result = Schedule(machine_count)
        now = min(j.release_date for j in remaining)
        deadline = self._first_deadline(remaining)
        # The per-job bounds and the WSPT selection key never change across
        # batches; computing them once per schedule() (instead of once per
        # job per batch) takes the selection off the sweep's hot path.
        bounds_cache = {job: (min_runtime(job), min_work(job)) for job in remaining}
        wspt_keys = {
            job: (area / max(job.weight, 1e-12), job.name)
            for job, (_, area) in bounds_cache.items()
        }
        batch_index = 0
        guard = 0
        max_batches = 4 * len(jobs) + 64  # generous; deadlines double so this is never hit
        while remaining:
            guard += 1
            if guard > max_batches:
                raise SchedulerError("bi-criteria scheduler did not converge")
            ready = [j for j in remaining if j.release_date <= now + 1e-12]
            if not ready:
                now = min(j.release_date for j in remaining)
                continue
            selected = self._select(
                ready, machine_count, deadline, keys=wspt_keys, bounds=bounds_cache
            )
            if not selected:
                # No released job fits in the current deadline: double it and
                # retry (the guard above bounds the number of doublings).
                deadline *= 2.0
                continue
            # Jobs hash and compare by their (unique) name, so the set-based
            # sweep removes exactly the elements list.remove() would.
            selected_set = set(selected)
            remaining = [j for j in remaining if j not in selected_set]
            batch_schedule = self._schedule_batch(selected, machine_count, now, deadline)
            batch_schedule.validate(check_release_dates=False)
            # In-place union (same entries, same insertion order as the
            # previous result.merge(batch_schedule), without re-copying the
            # accumulated schedule on every batch).
            for entry in batch_schedule:
                result.add_scheduled(entry)
            if batch_schedule.reservations:
                result.reservations = result.reservations + batch_schedule.reservations
            batch_makespan = batch_schedule.makespan()
            record = BatchRecord(
                index=batch_index,
                start=now,
                deadline=deadline,
                jobs=[j.name for j in selected],
                makespan=batch_makespan,
            )
            self.last_batches.append(record)
            now = max(batch_makespan, now)
            deadline *= 2.0
            batch_index += 1
        return result

    # -- helpers ---------------------------------------------------------------
    def _schedule_batch(
        self, selected: Sequence[Job], machine_count: int, now: float, deadline: float
    ) -> Schedule:
        """Schedule one batch starting at ``now``.

        With an explicit ``offline`` policy the batch is delegated to it.
        Otherwise the built-in deadline-aware procedure is used: each
        moldable job gets the smallest allocation whose runtime fits in
        ``deadline`` (minimal work inflation), rigid jobs keep their
        requirement, and the resulting rigid instance is packed with LPT
        list scheduling.
        """

        if self.offline is not None:
            return self.offline.schedule(selected, machine_count, start_time=now)
        from repro.core.job import MoldableJob, RigidJob  # local: avoid import cycle noise
        from repro.core.policies.base import list_schedule_rigid

        allocations: List[Tuple[Job, int]] = []
        for job in selected:
            if isinstance(job, RigidJob):
                nbproc = job.nbproc
            elif isinstance(job, MoldableJob):
                nbproc = job.canonical_allocation(deadline)
                if nbproc is None or nbproc > machine_count:
                    # Admission guarantees min_runtime(job) <= deadline, so a
                    # feasible allocation exists; cap it at the platform size
                    # and fall back to the fastest allocation otherwise.
                    upper = min(job.max_procs, machine_count)
                    nbproc = min(
                        range(job.min_procs, upper + 1),
                        key=lambda k: (job.runtime(k), k),
                    )
            else:
                raise SchedulerError(f"cannot schedule job of type {type(job)!r}")
            allocations.append((job, nbproc))
        allocations.sort(key=lambda t: (-t[0].runtime(t[1]), t[0].name))
        return list_schedule_rigid(allocations, machine_count, start_time=now)

    def _first_deadline(self, jobs: Sequence[Job]) -> float:
        if self.initial_deadline is not None:
            return self.initial_deadline
        smallest = min(min_runtime(j) for j in jobs)
        return max(smallest, 1e-9)

    def _select(
        self,
        ready: Sequence[Job],
        machine_count: int,
        deadline: float,
        *,
        keys: "Optional[dict]" = None,
        bounds: "Optional[dict]" = None,
    ) -> List[Job]:
        """Greedy maximum-weight selection of jobs fitting in ``deadline``.

        Jobs are taken in WSPT order (minimal work divided by weight); a job
        is admitted while its best runtime fits in the deadline and the total
        admitted area stays within ``deadline * machine_count``.  ``keys`` /
        ``bounds`` optionally supply the precomputed per-job WSPT sort keys
        and ``(min_runtime, min_work)`` pairs.
        """

        if keys is not None:
            order = sorted(ready, key=keys.__getitem__)
        else:
            order = sorted(
                ready, key=lambda j: (min_work(j) / max(j.weight, 1e-12), j.name)
            )
        budget = deadline * machine_count
        used = 0.0
        selected: List[Job] = []
        for job in order:
            if bounds is not None:
                runtime, area = bounds[job]
            else:
                runtime = min_runtime(job)
                area = min_work(job)
            if runtime > deadline + 1e-12:
                continue
            if used + area > budget + 1e-9:
                continue
            selected.append(job)
            used += area
        return selected
