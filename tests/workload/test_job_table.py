"""Equivalence suite for the struct-of-arrays :class:`JobTable`.

The table is the vectorized fast path of the workload generators: it
validates profiles in numpy passes, derives the bound columns once, and
materializes :class:`MoldableJob` objects with pre-seeded memo caches.  The
contract is *bit identity* with the scalar per-job path -- same accepted
profiles, same rejection messages, same floats in every derived value --
because the sweep digests are computed over results of these jobs.
"""

import random

import numpy as np
import pytest

from repro.core.job import MoldableJob
from repro.workload import JobTable


def _random_profiles(seed, count, *, max_len=40):
    """Monotone (runtime down, work up) random profiles plus names/weights."""

    rng = random.Random(seed)
    names, profiles, weights, releases = [], [], [], []
    for i in range(count):
        length = rng.randrange(1, max_len)
        runtime = rng.uniform(5.0, 500.0)
        profile = [runtime]
        for k in range(1, length):
            # Work k*p(k) may only grow: divide by a factor <= (k+1)/k.
            factor = rng.uniform(max(0.5, k / (k + 1)), 1.0)
            runtime *= factor
            profile.append(runtime)
        names.append(f"job-{seed}-{i}")
        profiles.append(profile)
        weights.append(rng.uniform(0.1, 10.0))
        releases.append(rng.uniform(0.0, 100.0))
    return names, profiles, weights, releases


def _reference_jobs(names, profiles, weights=None, releases=None):
    return [
        MoldableJob(
            name=name,
            release_date=releases[i] if releases is not None else 0.0,
            weight=weights[i] if weights is not None else 1.0,
            runtimes=profiles[i],
        )
        for i, name in enumerate(names)
    ]


def _assert_same_job(materialized, reference):
    assert materialized.name == reference.name
    assert materialized.release_date == reference.release_date
    assert materialized.weight == reference.weight
    assert materialized.due_date is None
    assert materialized.owner is None
    assert materialized.min_procs == reference.min_procs
    assert materialized.enforce_monotony is True
    assert isinstance(materialized.runtimes, tuple)
    assert materialized.runtimes == reference.runtimes
    # Bit-identical derived values (the scalar side computes them lazily).
    assert materialized.best_runtime() == reference.best_runtime()
    assert materialized.min_work() == reference.min_work()
    assert materialized._profile_non_increasing() == reference._profile_non_increasing()


@pytest.mark.parametrize("seed", range(5))
def test_to_jobs_matches_reference_construction(seed):
    """from_profiles + to_jobs == per-job constructor, field for field."""

    names, profiles, weights, releases = _random_profiles(seed, 60)
    table = JobTable.from_profiles(
        names, profiles, weights=weights, release_dates=releases
    )
    jobs = table.to_jobs()
    reference = _reference_jobs(names, profiles, weights, releases)
    assert len(jobs) == len(reference)
    for job, ref in zip(jobs, reference):
        _assert_same_job(job, ref)


def test_to_jobs_pre_seeds_memo_caches():
    names, profiles, weights, releases = _random_profiles(7, 10)
    job = JobTable.from_profiles(names, profiles).to_jobs()[0]
    assert "_best_runtime" in job.__dict__
    assert "_min_work" in job.__dict__
    assert "_non_increasing" in job.__dict__
    # The seeded values equal a from-scratch recompute.
    fresh = MoldableJob(name=job.name, runtimes=job.runtimes)
    assert job.best_runtime() == fresh.best_runtime()
    assert job.min_work() == fresh.min_work()


@pytest.mark.parametrize("seed", range(3))
def test_bound_columns_match_scalar_methods(seed):
    names, profiles, weights, releases = _random_profiles(seed + 100, 40)
    table = JobTable.from_profiles(names, profiles, weights=weights)
    reference = _reference_jobs(names, profiles, weights)
    best = table.best_runtime_column()
    mwork = table.min_work_column()
    noninc = table.non_increasing_column()
    for i, ref in enumerate(reference):
        assert best[i] == ref.best_runtime()
        assert mwork[i] == ref.min_work()
        assert bool(noninc[i]) == ref._profile_non_increasing()


def test_from_jobs_round_trip_with_min_procs():
    """min_procs > 1 takes the per-row reduce path; round trip stays exact."""

    rng = random.Random(42)
    jobs = []
    for i in range(25):
        _, profiles, _, _ = _random_profiles(1000 + i, 1, max_len=20)
        profile = profiles[0]
        jobs.append(
            MoldableJob(
                name=f"mp-{i}",
                release_date=rng.uniform(0, 10),
                weight=rng.uniform(0.5, 2.0),
                runtimes=profile,
                min_procs=rng.randrange(1, len(profile) + 1),
            )
        )
    table = JobTable.from_jobs(jobs)
    assert not (table.min_procs == 1).all()  # the loop fallback is exercised
    best = table.best_runtime_column()
    mwork = table.min_work_column()
    for i, (job, out) in enumerate(zip(jobs, table.to_jobs())):
        assert best[i] == job.best_runtime()
        assert mwork[i] == job.min_work()
        _assert_same_job(out, job)


def test_empty_table():
    table = JobTable.from_profiles([], [])
    assert len(table) == 0
    assert table.to_jobs() == []
    assert table.best_runtime_column().shape == (0,)
    assert table.min_work_column().shape == (0,)


def test_single_point_profiles():
    table = JobTable.from_profiles(["a", "b"], [[3.0], [5.0]])
    jobs = table.to_jobs()
    assert [j.best_runtime() for j in jobs] == [3.0, 5.0]
    assert [j.min_work() for j in jobs] == [3.0, 5.0]


# ---------------------------------------------------------------------------
# Rejection parity: the vectorized validator must raise the *same* message
# the scalar constructor raises, for the *first* offending job.
# ---------------------------------------------------------------------------


def _scalar_message(name, profile, *, release=0.0, weight=1.0):
    with pytest.raises(ValueError) as err:
        MoldableJob(name=name, release_date=release, weight=weight, runtimes=profile)
    return str(err.value)


@pytest.mark.parametrize(
    "profile",
    [
        [5.0, 6.0],                         # runtime increases
        [5.0, 4.0, 4.5],                    # runtime increases later
        [10.0, 4.0],                        # work decreases (2*4 < 1*10)
        [5.0, 0.0],                         # non-positive runtime
        [5.0, -1.0, 1.0],                   # negative runtime
        list(range(20, 0, -1)) + [25.0],    # long profile: vectorized check path
    ],
)
def test_invalid_profile_message_matches_scalar(profile):
    profile = [float(p) for p in profile]
    expected = _scalar_message("bad", profile)
    good = [8.0, 7.0, 6.5]
    with pytest.raises(ValueError) as err:
        JobTable.from_profiles(["ok", "bad", "ok2"], [good, profile, good])
    assert str(err.value) == expected


def test_negative_release_and_weight_messages_match_scalar():
    expected = _scalar_message("neg-r", [2.0], release=-1.0)
    with pytest.raises(ValueError) as err:
        JobTable.from_profiles(["neg-r"], [[2.0]], release_dates=[-1.0])
    assert str(err.value) == expected

    expected = _scalar_message("neg-w", [2.0], weight=-0.5)
    with pytest.raises(ValueError) as err:
        JobTable.from_profiles(["neg-w"], [[2.0]], weights=[-0.5])
    assert str(err.value) == expected


def test_empty_profile_rejected():
    with pytest.raises(ValueError, match="empty runtime profile"):
        JobTable.from_profiles(["e"], [[]])


def test_tolerated_jitter_accepted_but_flagged_not_monotone():
    """A runtime increase within the 1e-9 tolerance passes validation (as in
    the scalar constructor) but the *exact* non-increasing flag is False --
    both sides must agree on the distinction."""

    profile = [5.0, 5.0 * (1 + 1e-12), 4.0]
    reference = MoldableJob(name="jitter", runtimes=profile)
    table = JobTable.from_profiles(["jitter"], [profile])
    (job,) = table.to_jobs()
    assert reference._profile_non_increasing() is False
    assert job._profile_non_increasing() is False


def test_length_mismatches_rejected():
    with pytest.raises(ValueError):
        JobTable.from_profiles(["a"], [[1.0]], weights=[1.0, 2.0])
    with pytest.raises(ValueError):
        JobTable.from_profiles(["a"], [[1.0]], release_dates=[])
    with pytest.raises(ValueError):
        JobTable.from_profiles(["a", "b"], [[1.0]])


def test_from_jobs_rejects_non_moldable():
    from repro.core.job import RigidJob

    with pytest.raises(TypeError):
        JobTable.from_jobs([RigidJob(name="r", nbproc=2, duration=1.0)])


def test_generator_routes_through_table_with_primed_memos():
    """generate_moldable_jobs materializes through the table: every job comes
    back with its memo caches already populated."""

    from repro.workload.models import generate_moldable_jobs

    jobs = generate_moldable_jobs(30, 32, random_state=9)
    assert jobs
    for job in jobs:
        assert "_best_runtime" in job.__dict__
        assert job.best_runtime() == min(job.runtimes[job.min_procs - 1 :])
        assert job.min_work() == min(
            (k + 1) * p
            for k, p in enumerate(job.runtimes)
            if k + 1 >= job.min_procs
        )
