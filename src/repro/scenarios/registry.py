"""Decorator-based scenario registry.

Scenario families register themselves as data (a :class:`ScenarioSpec`)
under a unique name, either directly::

    register(ScenarioSpec(name="cluster.policy-panel", ...))

or through the :func:`scenario` decorator on a zero-argument builder::

    @scenario
    def cluster_policy_panel() -> ScenarioSpec:
        return ScenarioSpec(name="cluster.policy-panel", ...)

The registry is what makes scenario diversity enumerable: the CLI
(``python -m repro.scenarios``), the CI smoke job, the determinism tests and
the bench bridge all iterate :func:`names` / :func:`all_specs` instead of
maintaining hand-written lists, so an unregistered scenario cannot exist and
a broken one fails every consumer at once.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


class ScenarioCollisionError(ValueError):
    """Two scenarios tried to register under the same name."""


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Validate and register ``spec``; raises on name collisions."""

    spec.validate()
    if spec.name in _REGISTRY:
        raise ScenarioCollisionError(
            f"scenario {spec.name!r} is already registered; "
            "pick a unique name or unregister the existing one first"
        )
    _REGISTRY[spec.name] = spec
    return spec


def scenario(builder: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
    """Decorator registering the spec returned by a zero-argument builder."""

    register(builder())
    return builder


def unregister(name: str) -> None:
    """Remove a scenario (primarily for tests composing temporary registries)."""

    _REGISTRY.pop(name, None)


def get(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {names()}"
        ) from None


def names(tag: Optional[str] = None) -> List[str]:
    """Sorted registered names, optionally filtered by tag."""

    if tag is None:
        return sorted(_REGISTRY)
    return sorted(name for name, spec in _REGISTRY.items() if tag in spec.tags)


def all_specs(tag: Optional[str] = None) -> List[ScenarioSpec]:
    return [_REGISTRY[name] for name in names(tag)]


def resolve(requested: Optional[Iterable[str]] = None) -> List[ScenarioSpec]:
    """Resolve a list of names (None = every registered scenario)."""

    if requested is None:
        return all_specs()
    return [get(name) for name in requested]
