"""Regression tests for the event-queue fast path.

The kernel's :class:`~repro.simulation.events.EventQueue` was reworked from
a heap of ordered dataclasses to a heap of plain ``(time, priority, seq,
event)`` tuples.  These tests pin the semantics to the original
implementation: ``_ReferenceQueue`` below is the pre-fast-path queue kept
verbatim as the oracle, and seeded random schedules are drained through
both, asserting identical ``(time, priority, seq)`` order, identical
cancellation behaviour, and identical zero-delay FIFO wake order.
"""

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Simulator
from repro.simulation.events import EventQueue


# ---------------------------------------------------------------------------
# The pre-fast-path implementation (ordered dataclasses), kept as the oracle.
# ---------------------------------------------------------------------------


@dataclass(order=True)
class _RefEvent:
    time: float
    priority: int = 0
    seq: int = field(default=0)
    callback: Optional[Callable[[], None]] = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class _ReferenceQueue:
    """The original EventQueue: a heap of ordered dataclass events."""

    def __init__(self) -> None:
        self._heap: List[_RefEvent] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time, callback, *, priority=0):
        if time < 0:
            raise ValueError("cannot schedule an event at a negative time")
        event = _RefEvent(time=time, priority=priority, seq=next(self._counter),
                          callback=callback)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from an empty event queue")

    def peek_time(self):
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def cancel(self, event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def __len__(self) -> int:
        return max(self._live, 0)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


# ---------------------------------------------------------------------------
# Operation-sequence equivalence (hypothesis property)
# ---------------------------------------------------------------------------

# An operation is either a push (time-grid index, priority, and whether to
# immediately schedule a cancellation of this event), a pop, or a cancel of
# an earlier event.  Times come from a coarse grid so that ties are frequent
# and the (priority, seq) tie-breaks actually get exercised.
_OP = st.one_of(
    st.tuples(st.just("push"), st.integers(0, 40), st.integers(0, 2), st.booleans()),
    st.tuples(st.just("pop")),
    st.tuples(st.just("cancel"), st.integers(0, 10_000)),
)


def _apply_ops(queue, ops):
    """Run an operation script against a queue; return the observable log."""

    log = []
    handles = []
    for op in ops:
        if op[0] == "push":
            _, slot, priority, cancel_now = op
            handle = queue.push(slot * 0.25, lambda: None, priority=priority)
            handles.append(handle)
            if cancel_now:
                queue.cancel(handle)
            log.append(("len", len(queue)))
        elif op[0] == "pop":
            try:
                event = queue.pop()
                log.append(("pop", event.time, event.priority, event.seq))
            except IndexError:
                log.append(("pop-empty",))
        else:  # cancel an arbitrary earlier event (idempotent on repeats)
            _, index = op
            if handles:
                queue.cancel(handles[index % len(handles)])
            log.append(("len", len(queue), queue.peek_time()))
    while True:
        try:
            event = queue.pop()
        except IndexError:
            break
        log.append(("drain", event.time, event.priority, event.seq))
    return log


@settings(max_examples=200, deadline=None)
@given(ops=st.lists(_OP, max_size=60))
def test_fastpath_queue_matches_reference_semantics(ops):
    """Property: every op script observes identical behaviour on both queues."""

    assert _apply_ops(EventQueue(), ops) == _apply_ops(_ReferenceQueue(), ops)


@pytest.mark.parametrize("seed", [0, 1, 2, 20040426])
def test_fastpath_queue_matches_reference_on_random_schedules(seed):
    """Heavier seeded scripts than hypothesis generates (thousands of ops)."""

    rng = random.Random(seed)
    ops = []
    for _ in range(5000):
        r = rng.random()
        if r < 0.70:
            ops.append(("push", rng.randrange(200), rng.randrange(3), rng.random() < 0.1))
        elif r < 0.90:
            ops.append(("pop",))
        else:
            ops.append(("cancel", rng.randrange(10_000)))
    assert _apply_ops(EventQueue(), ops) == _apply_ops(_ReferenceQueue(), ops)


# ---------------------------------------------------------------------------
# Cascade equivalence: the full Simulator run loop vs a reference event loop
# ---------------------------------------------------------------------------


def _cascade_scenario(seed, schedule, cancel, now, log):
    """Seed a self-expanding event cascade through the given scheduling API.

    ``schedule(delay, callback, priority)`` and ``cancel(handle)`` abstract
    over the new Simulator and the reference loop; the cascade re-schedules
    itself with quantised delays (lots of ties), spawns zero-delay children
    (FIFO wake order) and cancels decoys, so the log pins every ordering
    rule at once.
    """

    rng = random.Random(seed)

    def make_node(ident, depth):
        def fire():
            log.append((round(now(), 6), ident))
            if depth >= 3:
                return
            fanout = rng.randrange(0, 3)
            for child in range(fanout):
                delay = rng.choice([0.0, 0.0, 0.25, 0.5, 1.75])
                priority = rng.randrange(3)
                schedule(delay, make_node(f"{ident}.{child}", depth + 1), priority)
            if rng.random() < 0.3:
                decoy = schedule(1.0, make_node(f"{ident}.decoy", depth + 1), 0)
                cancel(decoy)

        return fire

    for root in range(8):
        schedule(rng.random() * 4.0, make_node(f"r{root}", 0), rng.randrange(3))


def _run_cascade_simulator(seed):
    sim = Simulator()
    log = []
    _cascade_scenario(
        seed,
        lambda delay, cb, priority: sim.schedule(delay, cb, priority=priority),
        sim.cancel,
        lambda: sim.now,
        log,
    )
    sim.run()
    return log


def _run_cascade_reference(seed):
    queue = _ReferenceQueue()
    clock = [0.0]
    log = []
    _cascade_scenario(
        seed,
        lambda delay, cb, priority: queue.push(clock[0] + delay, cb, priority=priority),
        queue.cancel,
        lambda: clock[0],
        log,
    )
    while queue:
        event = queue.pop()
        clock[0] = event.time
        event.callback()
    return log


@pytest.mark.parametrize("seed", range(12))
def test_simulator_cascade_matches_reference_loop(seed):
    """Fire order of a random self-scheduling cascade is bit-identical.

    The same seeded cascade (same RNG consumption order) runs once through
    the new batched Simulator.run loop and once through a straightforward
    loop over the reference queue; zero-delay children, same-time ties and
    mid-flight cancellations must land in exactly the same order.
    """

    assert _run_cascade_simulator(seed) == _run_cascade_reference(seed)


def test_zero_delay_fifo_wake_order_unchanged():
    """Many zero-delay events at one timestamp fire strictly in push order."""

    sim = Simulator()
    order = []

    def spawn():
        for index in range(50):
            sim.schedule(0.0, lambda i=index: order.append(i))

    sim.schedule(1.0, spawn)
    sim.run()
    assert order == list(range(50))
