"""Event queue primitives for the discrete-event simulation kernel.

Events are ordered by ``(time, priority, sequence number)``: ties on time are
broken first by an explicit integer priority (smaller runs first) and then by
insertion order, which makes every simulation fully deterministic.

Fast path: the heap stores plain ``(time, priority, seq, event)`` tuples, so
``heappush``/``heappop`` compare C-level tuples and never call back into
Python (``seq`` is unique, so the trailing :class:`Event` is never compared).
:class:`Event` itself is a ``__slots__`` record -- the handle returned to
callers for cancellation and introspection -- instead of an ordered
dataclass.  Cancelled events stay in the heap and are dropped lazily when
they surface, so cancellation is O(1) and ``peek_time`` never re-heapifies.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Event:
    """A scheduled callback (the handle returned by :meth:`EventQueue.push`).

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    priority:
        Tie-break priority: events scheduled at the same time fire in
        increasing priority order (default 0).
    seq:
        Monotonic insertion counter; never set manually.
    callback:
        Callable invoked with no argument when the event fires.
    label:
        Free-form description, kept for traces and debugging (empty unless
        the scheduling call site opted into label tracing).
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int = 0,
        seq: int = 0,
        callback: Optional[Callable[[], None]] = None,
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be silently dropped."""

        self.cancelled = True

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        label = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:g} prio={self.priority} seq={self.seq}{label}{state}>"


#: A heap entry; the unique ``seq`` guarantees tuple comparison never
#: reaches the Event payload.
_Entry = Tuple[float, int, int, Event]


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        if time < 0:
            raise ValueError("cannot schedule an event at a negative time")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, label)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next non-cancelled event.

        Raises :class:`IndexError` when the queue is empty.
        """

        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` when empty."""

        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def __len__(self) -> int:
        return max(self._live, 0)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
