"""Unit tests of the multi-round divisible-load distribution."""

import pytest

from repro.core.dlt.multiround import multi_round_distribution, optimize_round_count
from repro.core.dlt.platform import DLTPlatform


class TestMultiRound:
    def test_load_conservation(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.1)
        result = multi_round_distribution(100.0, platform, rounds=5)
        assert sum(result.round_loads) == pytest.approx(100.0)
        assert sum(result.per_worker_load.values()) == pytest.approx(100.0)

    def test_round_sizes_grow_geometrically(self):
        platform = DLTPlatform.homogeneous(2, compute_time=1.0, comm_time=0.1)
        result = multi_round_distribution(70.0, platform, rounds=3, growth=2.0)
        loads = result.round_loads
        assert loads[1] == pytest.approx(2 * loads[0])
        assert loads[2] == pytest.approx(4 * loads[0])

    def test_single_round_with_unit_growth_is_proportional_split(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.0)
        result = multi_round_distribution(100.0, platform, rounds=1)
        assert result.makespan == pytest.approx(25.0)

    def test_multi_round_beats_single_round_when_comm_is_significant(self):
        # Large communication cost, no latency: splitting into rounds overlaps
        # communication and computation and reduces the makespan.
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.5)
        single = multi_round_distribution(100.0, platform, rounds=1)
        multi = multi_round_distribution(100.0, platform, rounds=8)
        assert multi.makespan < single.makespan

    def test_latency_penalises_too_many_rounds(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.01, latency=5.0)
        few = multi_round_distribution(100.0, platform, rounds=2)
        many = multi_round_distribution(100.0, platform, rounds=32)
        assert few.makespan < many.makespan

    def test_makespan_never_below_ideal(self):
        platform = DLTPlatform.homogeneous(4, compute_time=2.0, comm_time=0.1)
        result = multi_round_distribution(100.0, platform, rounds=4)
        ideal = 100.0 * 2.0 / 4
        assert result.makespan >= ideal - 1e-9

    def test_invalid_parameters(self):
        platform = DLTPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            multi_round_distribution(0.0, platform)
        with pytest.raises(ValueError):
            multi_round_distribution(10.0, platform, rounds=0)
        with pytest.raises(ValueError):
            multi_round_distribution(10.0, platform, rounds=2, growth=0.0)


class TestOptimizeRoundCount:
    def test_returns_best_over_the_sweep(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.3, latency=0.5)
        best = optimize_round_count(200.0, platform, max_rounds=12)
        for rounds in range(1, 13):
            candidate = multi_round_distribution(200.0, platform, rounds=rounds)
            assert best.makespan <= candidate.makespan + 1e-9

    def test_no_comm_cost_prefers_single_round(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.0)
        best = optimize_round_count(100.0, platform, max_rounds=8)
        assert best.makespan == pytest.approx(25.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimize_round_count(10.0, DLTPlatform.homogeneous(2), max_rounds=0)
