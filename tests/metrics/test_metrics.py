"""Unit tests of the metrics package (ratios, fairness, aggregation)."""

import math

import pytest

from repro.core.allocation import Schedule
from repro.core.job import RigidJob
from repro.core.policies.list_scheduling import ListScheduler
from repro.metrics.aggregate import StreamingAggregator, aggregate_runs, group_by, summarize
from repro.metrics.fairness import (
    community_usage,
    fairness_report,
    jain_fairness_index,
)
from repro.metrics.ratios import schedule_ratios
from repro.workload.models import generate_rigid_jobs


class TestRatios:
    def test_ratios_at_least_one_on_real_schedules(self):
        jobs = generate_rigid_jobs(25, 8, random_state=1)
        schedule = ListScheduler("lpt").schedule(jobs, 8)
        report = schedule_ratios(schedule, jobs)
        assert report.makespan_ratio >= 1.0 - 1e-9
        assert report.weighted_completion_ratio >= 1.0 - 1e-9
        assert report.sum_completion_ratio >= 1.0 - 1e-9
        assert report.mean_stretch_ratio >= 1.0 - 1e-9
        assert report.n_jobs == 25
        assert set(report.as_dict()) >= {"makespan_ratio", "weighted_completion_ratio"}

    def test_perfect_packing_has_ratio_one(self):
        # Four identical unit jobs on four machines: the schedule equals every bound.
        jobs = [RigidJob(name=f"j{i}", nbproc=1, duration=4.0) for i in range(4)]
        schedule = Schedule(4)
        for i, job in enumerate(jobs):
            schedule.add(job, 0.0, [i])
        report = schedule_ratios(schedule, jobs)
        assert report.makespan_ratio == pytest.approx(1.0)

    def test_jobs_default_to_schedule_contents(self):
        jobs = generate_rigid_jobs(10, 4, random_state=2)
        schedule = ListScheduler("lpt").schedule(jobs, 4)
        implicit = schedule_ratios(schedule)
        explicit = schedule_ratios(schedule, jobs)
        assert implicit.makespan_ratio == pytest.approx(explicit.makespan_ratio)


class TestFairness:
    def test_jain_index_limits(self):
        assert jain_fairness_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert jain_fairness_index([]) == 1.0

    def test_community_usage(self):
        schedule = Schedule(4)
        schedule.add(RigidJob(name="a", nbproc=2, duration=4.0, owner="phys"), 0.0, [0, 1])
        schedule.add(RigidJob(name="b", nbproc=1, duration=2.0, owner="cs"), 0.0, [2])
        schedule.add(RigidJob(name="c", nbproc=1, duration=2.0), 0.0, [3])
        usage = community_usage(schedule)
        assert usage["phys"]["work"] == pytest.approx(8.0)
        assert usage["cs"]["jobs"] == 1
        assert "(unowned)" in usage

    def test_fairness_report_with_entitled_shares(self):
        schedule = Schedule(4)
        schedule.add(RigidJob(name="a", nbproc=2, duration=4.0, owner="phys"), 0.0, [0, 1])
        schedule.add(RigidJob(name="b", nbproc=2, duration=4.0, owner="cs"), 0.0, [2, 3])
        report = fairness_report(schedule, entitled_shares={"phys": 0.5, "cs": 0.5})
        assert report.fairness_on_work == pytest.approx(1.0)
        assert report.worst_community in ("phys", "cs")
        assert report.as_dict()["fairness_on_work"] == pytest.approx(1.0)

    def test_empty_schedule_fairness(self):
        report = fairness_report(Schedule(2))
        assert report.fairness_on_work == 1.0
        assert report.worst_community is None


class TestAggregate:
    def test_summarize(self):
        summary = summarize("metric", [1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
        assert summary.ci95_halfwidth > 0
        assert summary.as_dict()["mean"] == pytest.approx(2.5)

    def test_summarize_empty_and_singleton(self):
        empty = summarize("m", [])
        assert empty.count == 0
        assert math.isnan(empty.mean)
        single = summarize("m", [7.0])
        assert single.std == 0.0
        assert single.ci95_halfwidth == 0.0

    def test_aggregate_runs(self):
        runs = [{"policy": "a", "makespan": 10.0, "ok": True},
                {"policy": "a", "makespan": 12.0, "ok": True}]
        summaries = aggregate_runs(runs)
        assert "makespan" in summaries
        assert "policy" not in summaries      # non-numeric columns skipped
        assert "ok" not in summaries          # booleans skipped
        assert summaries["makespan"].mean == pytest.approx(11.0)
        explicit = aggregate_runs(runs, metrics=["makespan"])
        assert set(explicit) == {"makespan"}
        assert aggregate_runs([]) == {}

    def test_group_by(self):
        rows = [{"family": "a", "x": 1}, {"family": "b", "x": 2}, {"family": "a", "x": 3}]
        groups = group_by(rows, "family")
        assert len(groups["a"]) == 2
        assert len(groups["b"]) == 1


class TestStreamingAggregator:
    def test_streamed_summaries_match_batch_aggregation(self):
        rows = [{"ratio": 1.0 + 0.1 * i, "jobs": 10 * i, "label": "x"} for i in range(8)]
        aggregator = StreamingAggregator()
        for row in rows:
            aggregator.update(row)
        assert aggregator.rows_seen == 8
        batch = aggregate_runs(rows)
        streamed = aggregator.summaries()
        assert set(streamed) == set(batch) == {"ratio", "jobs"}
        for metric in streamed:
            assert streamed[metric] == batch[metric]

    def test_partial_summaries_available_mid_stream(self):
        aggregator = StreamingAggregator(metrics=["v"])
        aggregator.update({"v": 1.0})
        assert aggregator.summaries()["v"].count == 1
        aggregator.update({"v": 3.0})
        summary = aggregator.summaries()["v"]
        assert summary.count == 2
        assert summary.mean == pytest.approx(2.0)

    def test_merge_combines_shards(self):
        rows = [{"v": float(i)} for i in range(10)]
        left, right = StreamingAggregator(), StreamingAggregator()
        for row in rows[:4]:
            left.update(row)
        for row in rows[4:]:
            right.update(row)
        left.merge(right)
        assert left.rows_seen == 10
        assert left.summaries()["v"] == aggregate_runs(rows)["v"]

    def test_missing_metric_rows_are_skipped(self):
        aggregator = StreamingAggregator()
        aggregator.update({"v": 1.0})
        aggregator.update({"other": 5.0})
        assert aggregator.summaries()["v"].count == 1

    def test_non_numeric_values_in_later_rows_are_skipped(self):
        aggregator = StreamingAggregator()
        aggregator.update({"v": 1.0})
        aggregator.update({"v": "n/a"})  # e.g. an error marker row
        aggregator.update({"v": 3.0})
        summary = aggregator.summaries()["v"]
        assert summary.count == 2
        assert summary.mean == pytest.approx(2.0)


class TestUpdateRowsBatch:
    """``update_rows`` must be observably identical to row-at-a-time ``update``."""

    ROWS = [
        {"makespan": 10.0, "flow": 3, "label": "a"},
        {"makespan": 12.5, "flow": 4, "label": "b"},
        {"flow": 5},                                  # missing metric
        {"makespan": "error: boom", "flow": 6},       # non-numeric later value
        {"makespan": 9.0, "flow": True, "extra": 1},  # bool is not numeric
    ]

    def test_batch_matches_sequential(self):
        sequential = StreamingAggregator()
        for row in self.ROWS:
            sequential.update(row)
        batched = StreamingAggregator()
        batched.update_rows(self.ROWS)
        assert batched.rows_seen == sequential.rows_seen
        assert batched._metrics == sequential._metrics
        assert batched._values == sequential._values
        assert {m: s.as_dict() for m, s in batched.summaries().items()} == {
            m: s.as_dict() for m, s in sequential.summaries().items()
        }

    def test_batch_matches_sequential_with_explicit_metrics(self):
        sequential = StreamingAggregator(metrics=["flow"])
        for row in self.ROWS:
            sequential.update(row)
        batched = StreamingAggregator(metrics=["flow"])
        batched.update_rows(self.ROWS)
        assert batched._values == sequential._values

    def test_empty_batch_is_a_no_op(self):
        agg = StreamingAggregator()
        agg.update_rows([])
        assert agg.rows_seen == 0
        assert agg.summaries() == {}

    def test_chunked_batches_match_one_batch(self):
        whole = StreamingAggregator()
        whole.update_rows(self.ROWS)
        chunked = StreamingAggregator()
        chunked.update_rows(self.ROWS[:2])
        chunked.update_rows(self.ROWS[2:])
        assert chunked._values == whole._values
        assert chunked.rows_seen == whole.rows_seen
