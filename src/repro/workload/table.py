"""Struct-of-arrays job tables: the vectorized workload fast path.

The sweep engine builds hundreds of moldable jobs per experiment cell; with
plain :class:`~repro.core.job.MoldableJob` construction every job pays an
O(max_procs) python loop for profile validation plus three more O(max_procs)
scans the first time the bounds (:func:`~repro.core.bounds.min_work` et al.)
are queried.  A :class:`JobTable` stores the whole workload column-wise --
one CSR matrix of runtime profiles plus flat numpy columns for release
dates, weights and minimal allocations -- validates it in a handful of
vectorized passes, computes every derived bound column at once, and only
*materializes* :class:`~repro.core.job.MoldableJob` objects at the runtime
boundary (with their memo caches pre-seeded from the columns).

Bit-for-bit contract
--------------------
Everything in this module is digest-neutral by construction:

* validation uses the exact comparisons of ``MoldableJob.__post_init__``
  (elementwise, therefore IEEE-identical to the scalar loop) and re-runs the
  scalar constructor on the offending job to raise the identical message;
* the derived columns use only elementwise ``*`` and exact ``min`` folds
  (``np.minimum.reduceat``), which produce the same floats as the python
  ``min()`` over the same values;
* :meth:`JobTable.to_jobs` yields objects that compare equal -- field by
  field -- to jobs built through the regular constructor.

``tests/workload/test_job_table.py`` locks the equivalence down.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.job import MoldableJob

__all__ = ["JobTable"]


def _as_profile(profile) -> "np.ndarray":
    arr = np.asarray(profile, dtype=float)
    if arr.ndim != 1:
        raise ValueError("runtime profiles must be one-dimensional")
    return arr


class JobTable:
    """A columnar batch of moldable jobs (CSR profiles + flat columns).

    Parameters mirror the per-job fields of :class:`MoldableJob`; profiles
    are ragged, so they are stored CSR-style in ``data`` (concatenated
    float64 runtimes) indexed by ``ptr`` (``ptr[i]:ptr[i+1]`` is job *i*'s
    profile).  Use :meth:`from_profiles` / :meth:`from_jobs` instead of the
    raw constructor.
    """

    __slots__ = (
        "names",
        "release",
        "weight",
        "min_procs",
        "data",
        "ptr",
        "_best_runtime",
        "_min_work",
        "_non_increasing",
    )

    def __init__(
        self,
        names: List[str],
        release: "np.ndarray",
        weight: "np.ndarray",
        min_procs: "np.ndarray",
        data: "np.ndarray",
        ptr: "np.ndarray",
    ) -> None:
        self.names = names
        self.release = release
        self.weight = weight
        self.min_procs = min_procs
        self.data = data
        self.ptr = ptr
        self._best_runtime: Optional[np.ndarray] = None
        self._min_work: Optional[np.ndarray] = None
        self._non_increasing: Optional[np.ndarray] = None

    # -- construction -----------------------------------------------------
    @classmethod
    def from_profiles(
        cls,
        names: Sequence[str],
        profiles: Sequence,
        *,
        weights: Optional[Sequence[float]] = None,
        release_dates: Optional[Sequence[float]] = None,
        validate: bool = True,
    ) -> "JobTable":
        """Build a table from per-job runtime profiles (``min_procs`` = 1)."""

        if weights is not None and len(weights) != len(names):
            raise ValueError("weights and names must have the same length")
        if release_dates is not None and len(release_dates) != len(names):
            raise ValueError("release_dates and names must have the same length")
        n = len(names)
        arrays = [_as_profile(p) for p in profiles]
        if len(arrays) != n:
            raise ValueError("profiles and names must have the same length")
        lengths = np.fromiter((a.shape[0] for a in arrays), dtype=np.int64, count=n)
        if n and lengths.min() < 1:
            i = int(np.argmin(lengths))
            raise ValueError(f"job {names[i]!r}: empty runtime profile")
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=ptr[1:])
        data = np.concatenate(arrays) if n else np.empty(0, dtype=float)
        release = (
            np.asarray(release_dates, dtype=float)
            if release_dates is not None
            else np.zeros(n, dtype=float)
        )
        weight = (
            np.asarray(weights, dtype=float)
            if weights is not None
            else np.ones(n, dtype=float)
        )
        table = cls(list(names), release, weight, np.ones(n, dtype=np.int64), data, ptr)
        if validate:
            table._validate()
        return table

    @classmethod
    def from_jobs(cls, jobs: Sequence[MoldableJob]) -> "JobTable":
        """Build a table from existing (already validated) moldable jobs."""

        n = len(jobs)
        names: List[str] = []
        arrays: List[np.ndarray] = []
        release = np.empty(n, dtype=float)
        weight = np.empty(n, dtype=float)
        min_procs = np.empty(n, dtype=np.int64)
        for i, job in enumerate(jobs):
            if not isinstance(job, MoldableJob):
                raise TypeError(f"JobTable only holds moldable jobs, got {type(job)!r}")
            names.append(job.name)
            arrays.append(np.array(job.runtimes, dtype=float))
            release[i] = job.release_date
            weight[i] = job.weight
            min_procs[i] = job.min_procs
        lengths = np.fromiter((a.shape[0] for a in arrays), dtype=np.int64, count=n)
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=ptr[1:])
        data = np.concatenate(arrays) if n else np.empty(0, dtype=float)
        return cls(names, release, weight, min_procs, data, ptr)

    # -- validation --------------------------------------------------------
    def _scalar_raise(self, row: int) -> None:
        """Re-run the scalar constructor on ``row`` for the exact message."""

        i = int(row)
        MoldableJob(
            name=self.names[i],
            release_date=float(self.release[i]),
            weight=float(self.weight[i]),
            runtimes=self.data[self.ptr[i] : self.ptr[i + 1]].tolist(),
            min_procs=int(self.min_procs[i]),
        )
        raise AssertionError(
            f"vectorized validation flagged job {self.names[i]!r} but the "
            "scalar constructor accepted it"
        )  # pragma: no cover - guards a checker mismatch

    def _validate(self) -> None:
        """Vectorized equivalent of the per-job ``__post_init__`` checks."""

        data, ptr = self.data, self.ptr
        if (self.release < 0).any():
            self._scalar_raise(int(np.argmax(self.release < 0)))
        if (self.weight < 0).any():
            self._scalar_raise(int(np.argmax(self.weight < 0)))
        if data.shape[0] == 0:
            return
        if (data <= 0).any():
            pos = int(np.argmax(data <= 0))
            self._scalar_raise(int(np.searchsorted(ptr, pos, side="right")) - 1)
        if data.shape[0] > 1:
            prev, nxt = data[:-1], data[1:]
            # Position j compares data[j] and data[j+1]; it is internal to a
            # row unless j+1 is a row start.
            internal = np.ones(data.shape[0] - 1, dtype=bool)
            starts = ptr[1:-1]
            internal[starts[starts < data.shape[0]] - 1] = False
            kpos = (
                np.arange(1, data.shape[0], dtype=float)
                - np.repeat(ptr[:-1], np.diff(ptr)).astype(float)[1:]
            )
            runtime_bad = internal & (nxt > prev * (1 + 1e-9))
            work_bad = internal & ((kpos + 1.0) * nxt < kpos * prev * (1 - 1e-9))
            bad = runtime_bad | work_bad
            if bad.any():
                pos = int(np.argmax(bad))
                self._scalar_raise(int(np.searchsorted(ptr, pos + 1, side="right")) - 1)

    # -- derived columns ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.names)

    def _reduce_min(self, values: "np.ndarray") -> "np.ndarray":
        """Per-row exact ``min`` over the admissible suffix of each profile."""

        starts = self.ptr[:-1] + self.min_procs - 1
        if (self.min_procs == 1).all():
            # Rows are contiguous, so reduceat segments are exactly the rows.
            return np.minimum.reduceat(values, starts)
        out = np.empty(len(self.names), dtype=float)
        for i in range(len(self.names)):
            out[i] = values[starts[i] : self.ptr[i + 1]].min()
        return out

    def best_runtime_column(self) -> "np.ndarray":
        """``min(runtimes[min_procs-1:])`` for every job, in one pass."""

        if self._best_runtime is None:
            self._best_runtime = self._reduce_min(self.data)
        return self._best_runtime

    def min_work_column(self) -> "np.ndarray":
        """``min(k * p(k) for k >= min_procs)`` for every job, in one pass."""

        if self._min_work is None:
            kpos = (
                np.arange(self.data.shape[0], dtype=float)
                - np.repeat(self.ptr[:-1], np.diff(self.ptr)).astype(float)
                + 1.0
            )
            self._min_work = self._reduce_min(self.data * kpos)
        return self._min_work

    def non_increasing_column(self) -> "np.ndarray":
        """Exact (tolerance-free) per-row monotony flags."""

        if self._non_increasing is None:
            flags = np.ones(len(self.names), dtype=bool)
            data, ptr = self.data, self.ptr
            if data.shape[0] > 1:
                bad = data[1:] > data[:-1]
                starts = ptr[1:-1]
                bad[starts[starts < data.shape[0]] - 1] = False
                for pos in np.flatnonzero(bad):
                    flags[int(np.searchsorted(ptr, pos + 1, side="right")) - 1] = False
            self._non_increasing = flags
        return self._non_increasing

    # -- materialization ---------------------------------------------------
    def to_jobs(self) -> List[MoldableJob]:
        """Materialize :class:`MoldableJob` objects with primed memo caches.

        The objects are field-for-field identical to ones built through the
        regular constructor (the table was validated with the same checks),
        so this skips ``__post_init__`` and writes the instance dict
        directly; ``_best_runtime`` / ``_min_work`` / ``_non_increasing``
        are seeded from the vectorized columns instead of being recomputed
        lazily one O(max_procs) scan at a time.
        """

        best = self.best_runtime_column().tolist()
        mwork = self.min_work_column().tolist()
        noninc = self.non_increasing_column().tolist()
        release = self.release.tolist()
        weight = self.weight.tolist()
        min_procs = self.min_procs.tolist()
        flat = self.data.tolist()
        bounds = self.ptr.tolist()
        jobs: List[MoldableJob] = []
        new = MoldableJob.__new__
        for i, name in enumerate(self.names):
            job = new(MoldableJob)
            d = job.__dict__
            d["name"] = name
            d["release_date"] = release[i]
            d["weight"] = weight[i]
            d["due_date"] = None
            d["owner"] = None
            d["runtimes"] = tuple(flat[bounds[i] : bounds[i + 1]])
            d["min_procs"] = min_procs[i]
            d["enforce_monotony"] = True
            d["_best_runtime"] = best[i]
            d["_min_work"] = mwork[i]
            d["_non_increasing"] = noninc[i]
            jobs.append(job)
        return jobs
