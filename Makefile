# Canonical entry points for the test suite, the benchmarks and a lint pass.
#
#   make test                  tier-1 unit suite (tests/)
#   make bench                 paper-figure benchmarks (benchmarks/)
#   make bench JOBS=4          ... fanned out to 4 worker processes
#   make bench CACHE=.repro-cache   ... with the on-disk cell cache
#   make lint                  byte-compile every source tree

PYTHON ?= python
JOBS ?=
CACHE ?=

BENCH_ENV = $(if $(JOBS),REPRO_JOBS=$(JOBS)) $(if $(CACHE),REPRO_CACHE_DIR=$(CACHE))

.PHONY: test bench lint clean

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(BENCH_ENV) $(PYTHON) -m pytest benchmarks -q

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

clean:
	rm -rf .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
