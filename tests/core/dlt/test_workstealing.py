"""Unit tests of the dynamic (work-stealing) divisible-load distribution."""

import pytest

from repro.core.dlt.bus import bus_single_round
from repro.core.dlt.platform import DLTPlatform, DLTWorker
from repro.core.dlt.workstealing import (
    sweep_chunk_sizes,
    work_stealing_distribution,
)


class TestWorkStealing:
    def test_load_conservation(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.05)
        result = work_stealing_distribution(100.0, platform)
        assert result.total_load == pytest.approx(100.0)
        assert sum(result.per_worker_chunks.values()) == result.chunks_served

    def test_chunk_count_matches_chunk_size(self):
        platform = DLTPlatform.homogeneous(2, compute_time=1.0, comm_time=0.0)
        result = work_stealing_distribution(100.0, platform, chunk_size=10.0)
        assert result.chunks_served == 10

    def test_adapts_to_heterogeneous_speeds_without_knowing_them(self):
        workers = [DLTWorker("fast", 0.25, 0.0), DLTWorker("slow", 1.0, 0.0)]
        result = work_stealing_distribution(100.0, DLTPlatform(workers), chunk_size=1.0)
        # The fast worker should end up with roughly 4x the load of the slow one.
        assert result.per_worker_load["fast"] > 2.5 * result.per_worker_load["slow"]

    def test_close_to_optimal_with_small_chunks_and_free_comm(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.0)
        result = work_stealing_distribution(100.0, platform, chunk_size=0.5)
        assert result.makespan <= 25.0 + 0.5 + 1e-9

    def test_latency_makes_small_chunks_expensive(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.01, latency=1.0)
        small = work_stealing_distribution(100.0, platform, chunk_size=1.0)
        large = work_stealing_distribution(100.0, platform, chunk_size=12.5)
        assert large.makespan < small.makespan

    def test_never_much_worse_than_static_optimal_on_a_bus(self):
        platform = DLTPlatform.homogeneous(6, compute_time=1.0, comm_time=0.02)
        static = bus_single_round(120.0, platform)
        dynamic = work_stealing_distribution(120.0, platform)
        # One chunk per worker of slack at most.
        assert dynamic.makespan <= static.makespan + 2 * dynamic.chunk_size

    def test_invalid_parameters(self):
        platform = DLTPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            work_stealing_distribution(0.0, platform)
        with pytest.raises(ValueError):
            work_stealing_distribution(10.0, platform, chunk_size=0.0)


class TestSweepChunkSizes:
    def test_returns_the_best_candidate(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.05, latency=0.5)
        best_size, best_result = sweep_chunk_sizes(100.0, platform)
        for k in (1, 2, 4, 8, 16, 32):
            candidate = work_stealing_distribution(100.0, platform, chunk_size=100.0 / (k * 4))
            assert best_result.makespan <= candidate.makespan + 1e-9
        assert best_size > 0
