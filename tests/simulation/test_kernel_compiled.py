"""Equivalence suite for the compiled kernel tier (``repro._ckernel``).

The compiled event queue + run loop must be *observably identical* to the
pure-python kernel: same pop order under time/priority/seq ties, same
cancellation semantics, same zero-delay FIFO wake order, and bit-identical
scenario digests.  Every test here skips (not fails) when the extension is
not built -- ``make kernel`` builds it -- so the pure tier remains a
first-class configuration.

The oracle strategy mirrors ``test_queue_fastpath.py``: random operation
scripts and self-scheduling cascades are driven through both tiers and the
observable logs compared element by element.
"""

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Simulator
from repro.simulation.events import EventQueue
from repro.simulation.kernel import compiled_available, load_ckernel, resolve_kernel

pytestmark = pytest.mark.skipif(
    not compiled_available(),
    reason="compiled kernel extension not built (run `make kernel`)",
)


def _kernel_core():
    return load_ckernel().KernelCore()


# ---------------------------------------------------------------------------
# Operation-script oracle: KernelCore vs the pure EventQueue
# ---------------------------------------------------------------------------

_OP = st.one_of(
    st.tuples(st.just("push"), st.integers(0, 40), st.integers(0, 2), st.booleans()),
    st.tuples(st.just("pop")),
    st.tuples(st.just("cancel"), st.integers(0, 10_000)),
)


def _apply_ops(queue, ops):
    """Run an operation script; return the observable log (shared oracle
    harness with ``test_queue_fastpath.py``)."""

    log = []
    handles = []
    for op in ops:
        if op[0] == "push":
            _, slot, priority, cancel_now = op
            handle = queue.push(slot * 0.25, lambda: None, priority=priority)
            handles.append(handle)
            if cancel_now:
                queue.cancel(handle)
            log.append(("len", len(queue)))
        elif op[0] == "pop":
            try:
                event = queue.pop()
                log.append(("pop", event.time, event.priority, event.seq))
            except IndexError:
                log.append(("pop-empty",))
        else:
            _, index = op
            if handles:
                queue.cancel(handles[index % len(handles)])
            log.append(("len", len(queue), queue.peek_time()))
    while True:
        try:
            event = queue.pop()
        except IndexError:
            break
        log.append(("drain", event.time, event.priority, event.seq))
    return log


@settings(max_examples=200, deadline=None)
@given(ops=st.lists(_OP, max_size=60))
def test_compiled_queue_matches_pure_queue(ops):
    """Property: every op script observes identical behaviour on both tiers."""

    assert _apply_ops(_kernel_core(), ops) == _apply_ops(EventQueue(), ops)


@pytest.mark.parametrize("seed", [0, 1, 2, 20040426])
def test_compiled_queue_matches_pure_on_random_schedules(seed):
    """Heavier seeded scripts (thousands of ops) than hypothesis generates."""

    rng = random.Random(seed)
    ops = []
    for _ in range(5000):
        r = rng.random()
        if r < 0.70:
            ops.append(("push", rng.randrange(200), rng.randrange(3), rng.random() < 0.1))
        elif r < 0.90:
            ops.append(("pop",))
        else:
            ops.append(("cancel", rng.randrange(10_000)))
    assert _apply_ops(_kernel_core(), ops) == _apply_ops(EventQueue(), ops)


def test_compiled_queue_rejects_negative_time():
    with pytest.raises(ValueError):
        _kernel_core().push(-1.0, lambda: None)


# ---------------------------------------------------------------------------
# Cascade equivalence: compiled Simulator vs pure Simulator
# ---------------------------------------------------------------------------


def _cascade(seed, sim):
    """The self-expanding cascade of ``test_queue_fastpath.py``, driven
    through a Simulator of either tier; returns the (time, ident) log."""

    rng = random.Random(seed)
    log = []

    def make_node(ident, depth):
        def fire():
            log.append((round(sim.now, 6), ident))
            if depth >= 3:
                return
            for child in range(rng.randrange(0, 3)):
                delay = rng.choice([0.0, 0.0, 0.25, 0.5, 1.75])
                priority = rng.randrange(3)
                sim.schedule(delay, make_node(f"{ident}.{child}", depth + 1),
                             priority=priority)
            if rng.random() < 0.3:
                decoy = sim.schedule(1.0, make_node(f"{ident}.decoy", depth + 1))
                sim.cancel(decoy)

        return fire

    for root in range(8):
        sim.schedule(rng.random() * 4.0, make_node(f"r{root}", 0),
                     priority=rng.randrange(3))
    sim.run()
    return log


@pytest.mark.parametrize("seed", range(12))
def test_compiled_simulator_cascade_matches_pure(seed):
    """Fire order of a random self-scheduling cascade is identical across
    tiers: zero-delay children, same-time ties, mid-flight cancellations."""

    compiled = Simulator(kernel="compiled")
    pure = Simulator(kernel="pure")
    assert type(compiled) is not type(pure)  # the tier actually engaged
    assert _cascade(seed, compiled) == _cascade(seed, pure)


def test_compiled_zero_delay_fifo_wake_order():
    sim = Simulator(kernel="compiled")
    order = []

    def spawn():
        for index in range(50):
            sim.schedule(0.0, lambda i=index: order.append(i))

    sim.schedule(1.0, spawn)
    sim.run()
    assert order == list(range(50))


def test_compiled_run_until_and_stop():
    for kernel in ("pure", "compiled"):
        sim = Simulator(kernel=kernel)
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        now = sim.run(until=2.0)
        assert fired == [1]
        assert now == 2.0
        sim.run()
        assert fired == [1, 3]


# ---------------------------------------------------------------------------
# Golden-digest parity: scenario smokes under REPRO_KERNEL=compiled
# ---------------------------------------------------------------------------

GOLDENS = json.loads(
    (Path(__file__).parents[1] / "runtime" / "goldens.json").read_text()
)


@pytest.mark.parametrize("name", sorted(GOLDENS["scenarios"]))
def test_scenario_smoke_digest_identical_on_compiled_tier(name, monkeypatch):
    """Every scenario smoke digest is bit-identical on the compiled tier.

    The goldens were captured on the pure tier; running the same scenarios
    with ``REPRO_KERNEL=compiled`` must reproduce them exactly -- the tiers
    differ in wall-clock only, never in results.
    """

    monkeypatch.setenv("REPRO_KERNEL", "compiled")
    assert resolve_kernel() == "compiled"

    from repro.runtime import golden

    digests = golden.scenario_digests([name], executor="serial")
    assert digests[name] == GOLDENS["scenarios"][name], (
        f"scenario {name!r} digest drifted between kernel tiers"
    )
