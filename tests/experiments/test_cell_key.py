"""Byte-identity of the precomputed :class:`CellKeyer` against the reference.

``cell_key`` hashes key on-disk caches, campaign journals and store
partitions: the optimized keyer must produce the *same JSON blob bytes*
(hence the same SHA-256) as the reference implementation for every cell,
including adversarial parameter values -- unicode, floats, negative seeds,
tuples, and unhashable values that defeat the params memo.
"""

import pytest

from repro.experiments.grid import (
    Cell,
    CellKeyer,
    _cell_key_uncached,
    cell_key,
    expand_grid,
    keyer_for,
)

TRICKY_PARAMS = [
    (),
    (("alpha", 0.5),),
    (("alpha", 1e-300), ("beta", -0.0), ("gamma", float("inf"))),
    (("name", "café ☃"), ("quote", 'he said "hi"'), ("backslash", "a\\b")),
    (("flag", True), ("none", None), ("n", 10**20)),
    (("tup", (1, 2, "x")), ("nested", (("a", 1),))),
    (("listy", [1, [2, 3]]), ("dicty", {"k": "v"})),  # unhashable: memo bypass
    (("empty", ""), ("newline", "a\nb\tc"),),
]


@pytest.mark.parametrize("params", TRICKY_PARAMS)
@pytest.mark.parametrize("experiment,version", [
    ("figure2", ""),
    ("exp ünicode", "v1.2-deadbeef"),
    ('weird "exp"', "with\nnewline"),
])
def test_keyer_blob_and_key_match_reference(experiment, version, params):
    keyer = CellKeyer(experiment, version)
    for repetition, seed in [(0, 1234), (3, -7), (10**6, 2**63 - 1)]:
        cell = Cell(index=0, repetition=repetition, seed=seed, params=params)
        import hashlib
        blob = keyer.blob(cell)
        assert hashlib.sha256(blob.encode("utf-8")).hexdigest() == _cell_key_uncached(
            experiment, cell, version
        )
        assert keyer.key(cell) == _cell_key_uncached(experiment, cell, version)


def test_cell_key_delegates_to_shared_keyer():
    cells = expand_grid({"m": [16, 32], "policy": ["mrt", "wspt"]}, repetitions=3)
    for cell in cells:
        assert cell_key("figure2", cell, "v1") == _cell_key_uncached(
            "figure2", cell, "v1"
        )
    # The keyer instance is shared per (experiment, version) pair.
    assert keyer_for("figure2", "v1") is keyer_for("figure2", "v1")
    assert keyer_for("figure2", "v1") is not keyer_for("figure2", "v2")


def test_params_memo_shared_across_repetitions():
    keyer = CellKeyer("e")
    params = (("a", 1), ("b", 2.5))
    first = Cell(index=0, repetition=0, seed=1, params=params)
    second = Cell(index=1, repetition=1, seed=2, params=params)
    keyer.key(first)
    assert params in keyer._params_json
    assert keyer.key(second) == _cell_key_uncached("e", second)


def test_unhashable_params_skip_memo_but_stay_correct():
    keyer = CellKeyer("e")
    params = (("values", [1, 2, 3]),)
    cell = Cell(index=0, repetition=0, seed=9, params=params)
    assert keyer.key(cell) == _cell_key_uncached("e", cell)
    assert not keyer._params_json  # unhashable value never entered the memo
