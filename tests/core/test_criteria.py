"""Unit tests of the optimisation criteria of section 3."""

import pytest

from repro.core import criteria
from repro.core.allocation import Schedule
from repro.core.criteria import ALL_CRITERIA, CriteriaReport
from repro.core.job import MoldableJob, RigidJob


@pytest.fixture
def simple_schedule():
    """Two sequential jobs on one processor, known completion times."""

    schedule = Schedule(1)
    schedule.add(RigidJob(name="a", nbproc=1, duration=2.0, weight=3.0), 0.0, [0])
    schedule.add(RigidJob(name="b", nbproc=1, duration=4.0, weight=1.0,
                          release_date=1.0, due_date=5.0), 2.0, [0])
    return schedule


class TestElementaryCriteria:
    def test_makespan(self, simple_schedule):
        assert criteria.makespan(simple_schedule) == 6.0

    def test_sum_and_mean_completion(self, simple_schedule):
        assert criteria.sum_completion_times(simple_schedule) == 2.0 + 6.0
        assert criteria.mean_completion_time(simple_schedule) == 4.0

    def test_weighted_completion(self, simple_schedule):
        assert criteria.weighted_completion_time(simple_schedule) == 3.0 * 2.0 + 1.0 * 6.0

    def test_flow_and_stretch(self, simple_schedule):
        flows = criteria.flow_times(simple_schedule)
        assert flows == {"a": 2.0, "b": 5.0}
        assert criteria.mean_stretch(simple_schedule) == pytest.approx(3.5)
        assert criteria.sum_stretch(simple_schedule) == pytest.approx(7.0)
        assert criteria.max_stretch(simple_schedule) == 5.0

    def test_normalized_stretch(self, simple_schedule):
        # job a: flow 2, best runtime 2 -> 1 ; job b: flow 5, best runtime 4 -> 1.25
        assert criteria.mean_normalized_stretch(simple_schedule) == pytest.approx(1.125)
        assert criteria.max_normalized_stretch(simple_schedule) == pytest.approx(1.25)

    def test_throughput(self, simple_schedule):
        assert criteria.throughput(simple_schedule) == pytest.approx(2 / 6.0)
        assert criteria.throughput(simple_schedule, horizon=2.0) == pytest.approx(0.5)

    def test_tardiness(self, simple_schedule):
        lateness = criteria.tardiness(simple_schedule)
        assert lateness["a"] == 0.0            # no due date
        assert lateness["b"] == pytest.approx(1.0)  # completes at 6, due 5
        assert criteria.total_tardiness(simple_schedule) == pytest.approx(1.0)
        assert criteria.max_tardiness(simple_schedule) == pytest.approx(1.0)
        assert criteria.late_job_count(simple_schedule) == 1

    def test_normalized_makespan(self, simple_schedule):
        # total work = 6 on 1 machine -> bound 6 -> ratio 1
        assert criteria.normalized_makespan(simple_schedule) == pytest.approx(1.0)

    def test_empty_schedule_criteria(self):
        empty = Schedule(4)
        assert criteria.makespan(empty) == 0.0
        assert criteria.mean_completion_time(empty) == 0.0
        assert criteria.mean_stretch(empty) == 0.0
        assert criteria.max_stretch(empty) == 0.0
        assert criteria.throughput(empty) == 0.0
        assert criteria.total_tardiness(empty) == 0.0


class TestCriteriaReport:
    def test_report_matches_individual_functions(self, simple_schedule):
        report = CriteriaReport.from_schedule(simple_schedule)
        assert report.n_jobs == 2
        assert report.makespan == criteria.makespan(simple_schedule)
        assert report.weighted_completion == criteria.weighted_completion_time(simple_schedule)
        assert report.late_jobs == 1
        as_dict = report.as_dict()
        assert set(as_dict) >= {"makespan", "weighted_completion", "mean_stretch"}

    def test_registry_is_callable_on_any_schedule(self, simple_schedule):
        for name, function in ALL_CRITERIA.items():
            value = function(simple_schedule)
            assert isinstance(value, (int, float)), name


class TestMoldableCriteria:
    def test_normalized_stretch_uses_best_runtime(self):
        job = MoldableJob(name="m", runtimes=[8.0, 4.0], release_date=0.0)
        schedule = Schedule(2)
        schedule.add(job, 0.0, [0])   # runs sequentially: completion 8
        # best runtime is 4 -> normalised stretch 2
        assert criteria.max_normalized_stretch(schedule) == pytest.approx(2.0)
