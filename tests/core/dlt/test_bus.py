"""Unit tests of the single-round bus distribution closed form."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import divisible_makespan_lower_bound
from repro.core.dlt.bus import bus_equal_split, bus_single_round
from repro.core.dlt.platform import DLTPlatform, DLTWorker


class TestBusSingleRound:
    def test_no_communication_perfect_sharing(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.0)
        result = bus_single_round(100.0, platform)
        assert result.makespan == pytest.approx(25.0)
        assert result.fractions == pytest.approx((0.25,) * 4)

    def test_heterogeneous_workers_share_proportionally_without_comm(self):
        workers = [DLTWorker("fast", 0.5, 0.0), DLTWorker("slow", 2.0, 0.0)]
        result = bus_single_round(100.0, DLTPlatform(workers))
        # rates 2 and 0.5 -> shares 80 / 20, makespan 40
        assert result.loads[0] == pytest.approx(80.0)
        assert result.loads[1] == pytest.approx(20.0)
        assert result.makespan == pytest.approx(40.0)

    def test_all_workers_finish_simultaneously(self):
        platform = DLTPlatform.homogeneous(5, compute_time=1.3, comm_time=0.07)
        result = bus_single_round(50.0, platform)
        finish = result.worker_finish_times
        assert max(finish) - min(finish) < 1e-9

    def test_fractions_sum_to_one(self):
        platform = DLTPlatform.homogeneous(7, compute_time=0.9, comm_time=0.02)
        result = bus_single_round(10.0, platform)
        assert sum(result.fractions) == pytest.approx(1.0)
        assert sum(result.loads) == pytest.approx(10.0)

    def test_first_served_worker_gets_the_largest_share(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.2)
        result = bus_single_round(100.0, platform)
        fractions = list(result.fractions)
        assert fractions == sorted(fractions, reverse=True)

    def test_makespan_above_ideal_lower_bound(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.1)
        result = bus_single_round(100.0, platform)
        ideal = divisible_makespan_lower_bound(100.0, [w.compute_rate for w in platform])
        assert result.makespan >= ideal - 1e-9

    def test_optimal_beats_equal_split_on_heterogeneous_platform(self):
        workers = [DLTWorker("w1", 0.5, 0.05), DLTWorker("w2", 1.0, 0.05),
                   DLTWorker("w3", 3.0, 0.05)]
        platform = DLTPlatform(workers)
        optimal = bus_single_round(60.0, platform)
        naive = bus_equal_split(60.0, platform)
        assert optimal.makespan <= naive.makespan + 1e-9

    def test_heterogeneous_links_rejected_without_override(self):
        workers = [DLTWorker("a", 1.0, 0.1), DLTWorker("b", 1.0, 0.3)]
        with pytest.raises(ValueError):
            bus_single_round(10.0, DLTPlatform(workers))
        # Explicit bus time overrides the check.
        result = bus_single_round(10.0, DLTPlatform(workers), bus_time_per_unit=0.2)
        assert result.makespan > 0

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            bus_single_round(0.0, DLTPlatform.homogeneous(2))

    def test_single_worker(self):
        platform = DLTPlatform.homogeneous(1, compute_time=2.0, comm_time=0.1)
        result = bus_single_round(10.0, platform)
        assert result.makespan == pytest.approx(10 * 0.1 + 10 * 2.0)
        assert result.fractions == (1.0,)

    def test_participating_count(self):
        platform = DLTPlatform.homogeneous(3, compute_time=1.0, comm_time=0.0)
        assert bus_single_round(9.0, platform).participating == 3


@settings(max_examples=40, deadline=None)
@given(
    n_workers=st.integers(min_value=1, max_value=12),
    load=st.floats(min_value=0.1, max_value=10_000.0),
    compute=st.floats(min_value=0.01, max_value=10.0),
    comm=st.floats(min_value=0.0, max_value=1.0),
)
def test_bus_closed_form_properties(n_workers, load, compute, comm):
    """Properties of the closed form: conservation, simultaneous completion,
    makespan between the ideal bound and the single-worker time."""

    platform = DLTPlatform.homogeneous(n_workers, compute_time=compute, comm_time=comm)
    result = bus_single_round(load, platform)
    assert sum(result.loads) == pytest.approx(load, rel=1e-9)
    assert all(f >= -1e-12 for f in result.fractions)
    finish = result.worker_finish_times
    assert max(finish) - min(finish) < 1e-6 * max(1.0, max(finish))
    ideal = load * compute / n_workers
    single = load * (compute + comm)
    assert result.makespan >= ideal - 1e-9
    assert result.makespan <= single + 1e-6 * single
