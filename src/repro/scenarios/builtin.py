"""Built-in scenario families.

Importing this module (which ``repro.scenarios`` does automatically)
populates the registry with the paper's own experiments plus a dozen
scenario families that go beyond the figures: heterogeneous grids, bursty
and diurnal arrival streams, community-correlated submissions, rigid +
moldable mixes under backfilling, SWF trace replay, node churn, and DLT
scaling.  Every entry is pure data -- a :class:`ScenarioSpec` -- so new
families are added by writing a builder here (or registering a TOML file at
runtime), never by writing a new bespoke benchmark script.

Each spec carries a ``smoke`` block: the tiny-size variant the CI
``scenario-smoke`` job and the determinism tests run, so a scenario that
cannot execute end-to-end fails the build.
"""

from __future__ import annotations

from repro.scenarios.registry import scenario
from repro.scenarios.spec import ComponentSpec, ScenarioSpec

# ---------------------------------------------------------------------------
# The paper's experiments, as specs
# ---------------------------------------------------------------------------


@scenario
def fig2_bicriteria() -> ScenarioSpec:
    """Figure 2: bi-criteria doubling batches on a 100-machine cluster."""

    return ScenarioSpec(
        name="fig2.bicriteria",
        model="figure2",
        description="Figure 2 bi-criteria sweep: WiCi and Cmax ratios vs task count",
        tags=("paper", "cluster", "offline"),
        platform=ComponentSpec("count", {"machine_count": 100}),
        workload=ComponentSpec("figure2", {"family": "parallel", "runtime_range": [1.0, 50.0]}),
        policy=ComponentSpec("bicriteria", {"fast_inner": True}),
        repetitions=3,
        seed=2004,
        sweep={
            "workload.family": ["non_parallel", "parallel"],
            "workload.n_tasks": [50, 100, 200, 400, 600, 800, 1000],
        },
        smoke={
            "repetitions": 1,
            "sweep": {
                "workload.family": ["non_parallel", "parallel"],
                "workload.n_tasks": [40],
            },
        },
    )


@scenario
def fig3_ciment_centralized() -> ScenarioSpec:
    """Figure 3 / section 5.2: best-effort central server on the CIMENT grid."""

    return ScenarioSpec(
        name="fig3.ciment.centralized",
        model="grid-centralized",
        description="CIMENT light grid, centralized best-effort organisation",
        tags=("paper", "grid"),
        platform=ComponentSpec("ciment"),
        workload=ComponentSpec(
            "ciment-communities",
            {"jobs_per_community": 12, "local_seed_base": 10, "grid_seed_base": 50},
        ),
        policy=ComponentSpec("best-effort", {"local_policy": "backfill"}),
        repetitions=1,
        seed=1234,
        smoke={"workload.jobs_per_community": 3},
    )


@scenario
def mix_rigid_moldable() -> ScenarioSpec:
    """Section 5.1: the three strategies for mixing rigid and moldable jobs."""

    return ScenarioSpec(
        name="mix.rigid-moldable",
        model="offline",
        description="rigid+moldable mixes under the three section-5.1 strategies",
        tags=("paper", "offline", "mix"),
        platform=ComponentSpec("count", {"machine_count": 32}),
        workload=ComponentSpec("mixed", {"n_jobs": 60, "weight_scheme": "work"}),
        policy=ComponentSpec("mixed"),
        metrics=("makespan_ratio", "weighted_completion_ratio", "policy_name"),
        repetitions=1,
        seed=1234,
        sweep={
            "workload.rigid_fraction": [0.2, 0.5, 0.8],
            "policy.strategy": ["separate", "a_priori", "first_fit_batch"],
        },
        smoke={
            "workload.n_jobs": 18,
            "sweep": {
                "workload.rigid_fraction": [0.5],
                "policy.strategy": ["separate", "a_priori", "first_fit_batch"],
            },
        },
    )


# ---------------------------------------------------------------------------
# On-line cluster scenarios beyond the figures
# ---------------------------------------------------------------------------


@scenario
def cluster_policy_panel() -> ScenarioSpec:
    """Which queue policy for which stream: FCFS vs backfilling vs SJF."""

    return ScenarioSpec(
        name="cluster.policy-panel",
        model="cluster-online",
        description="queue-policy panel on a Poisson stream of moldable jobs",
        tags=("cluster", "online", "policy"),
        platform=ComponentSpec("count", {"machine_count": 64}),
        workload=ComponentSpec("moldable", {"n_jobs": 80, "runtime_range": [0.5, 10.0]}),
        arrival=ComponentSpec("poisson", {"rate": 2.0}),
        metrics=(
            "makespan", "mean_stretch", "utilization",
            "makespan_ratio", "mean_stretch_ratio", "policy_name",
        ),
        repetitions=3,
        seed=1234,
        sweep={"policy.kind": ["fifo", "backfill", "smallest-first"]},
        smoke={
            "workload.n_jobs": 25,
            "sweep": {"policy.kind": ["fifo", "backfill"]},
        },
    )


@scenario
def cluster_bursty_campaigns() -> ScenarioSpec:
    """Campaign submissions: whole parameter sweeps arriving as bursts."""

    return ScenarioSpec(
        name="cluster.bursty-campaigns",
        model="cluster-online",
        description="bursty campaign arrivals under backfilling, sweeping burst size",
        tags=("cluster", "online", "arrivals"),
        platform=ComponentSpec("count", {"machine_count": 64}),
        workload=ComponentSpec("moldable", {"n_jobs": 90, "runtime_range": [0.5, 12.0]}),
        arrival=ComponentSpec("bursty", {"burst_gap": 20.0}),
        policy=ComponentSpec("backfill"),
        metrics=("makespan", "mean_stretch", "max_stretch", "utilization"),
        repetitions=3,
        seed=1234,
        sweep={"arrival.burst_size": [5, 15, 30]},
        smoke={
            "workload.n_jobs": 24,
            "sweep": {"arrival.burst_size": [6]},
        },
    )


@scenario
def cluster_diurnal_load() -> ScenarioSpec:
    """Interactive users: day/night arrival cycles of increasing peakedness."""

    return ScenarioSpec(
        name="cluster.diurnal-load",
        model="cluster-online",
        description="diurnal (day/night) arrival cycles, sweeping peak-to-trough ratio",
        tags=("cluster", "online", "arrivals"),
        platform=ComponentSpec("count", {"machine_count": 64}),
        workload=ComponentSpec("moldable", {"n_jobs": 100, "runtime_range": [0.2, 8.0]}),
        arrival=ComponentSpec("diurnal", {"mean_interarrival": 0.5, "period": 24.0}),
        policy=ComponentSpec("backfill"),
        metrics=("makespan", "mean_stretch", "max_stretch", "utilization"),
        repetitions=3,
        seed=1234,
        sweep={"arrival.peak_to_trough": [1.0, 4.0, 16.0]},
        smoke={
            "workload.n_jobs": 20,
            "sweep": {"arrival.peak_to_trough": [4.0]},
        },
    )


@scenario
def cluster_community_streams() -> ScenarioSpec:
    """Community-correlated submissions: each CIMENT community's local stream."""

    return ScenarioSpec(
        name="cluster.community-streams",
        model="cluster-online",
        description="per-community workload profiles on a shared 128-processor cluster",
        tags=("cluster", "online", "communities"),
        platform=ComponentSpec("count", {"machine_count": 128}),
        workload=ComponentSpec("community", {"n_jobs": 40}),
        policy=ComponentSpec("backfill"),
        metrics=("makespan", "mean_stretch", "utilization", "throughput"),
        repetitions=3,
        seed=1234,
        sweep={
            "workload.community": [
                "astrophysics", "computer-science",
                "medical-research", "numerical-physics",
            ],
        },
        smoke={
            "workload.n_jobs": 10,
            "sweep": {"workload.community": ["computer-science", "numerical-physics"]},
        },
    )


@scenario
def cluster_load_ramp() -> ScenarioSpec:
    """Saturation behaviour: arrival rate targeting 50%..110% utilization."""

    return ScenarioSpec(
        name="cluster.load-ramp",
        model="cluster-online",
        description="Poisson stream scaled to a target load factor, up to overload",
        tags=("cluster", "online", "arrivals"),
        platform=ComponentSpec("count", {"machine_count": 64}),
        workload=ComponentSpec("moldable", {"n_jobs": 80, "runtime_range": [0.5, 10.0]}),
        arrival=ComponentSpec("scaled-load"),
        policy=ComponentSpec("backfill"),
        metrics=("makespan", "mean_stretch", "max_stretch", "utilization"),
        repetitions=3,
        seed=1234,
        sweep={"arrival.target_utilization": [0.5, 0.7, 0.9, 1.1]},
        smoke={
            "workload.n_jobs": 20,
            "sweep": {"arrival.target_utilization": [0.7]},
        },
    )


@scenario
def cluster_rigid_backfill_mix() -> ScenarioSpec:
    """Rigid + moldable mixes arriving on-line under aggressive backfilling."""

    return ScenarioSpec(
        name="cluster.rigid-backfill-mix",
        model="cluster-online",
        description="on-line rigid+moldable mix under backfilling, sweeping rigid fraction",
        tags=("cluster", "online", "mix"),
        platform=ComponentSpec("count", {"machine_count": 64}),
        workload=ComponentSpec("mixed", {"n_jobs": 70, "weight_scheme": "work"}),
        arrival=ComponentSpec("poisson", {"rate": 1.5}),
        policy=ComponentSpec("backfill"),
        metrics=("makespan", "weighted_completion", "mean_stretch", "utilization"),
        repetitions=3,
        seed=1234,
        sweep={"workload.rigid_fraction": [0.2, 0.5, 0.8]},
        smoke={
            "workload.n_jobs": 20,
            "sweep": {"workload.rigid_fraction": [0.5]},
        },
    )


@scenario
def swf_replay() -> ScenarioSpec:
    """SWF trace replay: export a seeded workload to SWF, parse it back, simulate."""

    return ScenarioSpec(
        name="swf.replay",
        model="cluster-online",
        description="Standard Workload Format round-trip replayed through the simulator",
        tags=("cluster", "online", "swf"),
        platform=ComponentSpec("count", {"machine_count": 64}),
        workload=ComponentSpec("swf-roundtrip", {"n_jobs": 60, "rate": 1.2}),
        metrics=("makespan", "mean_stretch", "utilization", "n_jobs"),
        repetitions=3,
        seed=1234,
        sweep={"policy.kind": ["fifo", "backfill"]},
        smoke={
            "workload.n_jobs": 15,
            "sweep": {"policy.kind": ["backfill"]},
        },
    )


# ---------------------------------------------------------------------------
# Grid scenarios
# ---------------------------------------------------------------------------


@scenario
def grid_decentralized_exchange() -> ScenarioSpec:
    """Decentralized CIMENT: does load exchange pay off, and at what threshold?"""

    return ScenarioSpec(
        name="grid.decentralized.exchange",
        model="grid-decentralized",
        description="CIMENT grid with decentralized work exchange on/off, threshold sweep",
        tags=("grid", "decentralized"),
        platform=ComponentSpec("ciment"),
        workload=ComponentSpec(
            "ciment-communities", {"jobs_per_community": 10, "grid_bags": False},
        ),
        policy=ComponentSpec("exchange", {"local_policy": "backfill"}),
        # No metrics filter: keep the per-cluster local_makespan.* columns.
        repetitions=1,
        seed=1234,
        sweep={
            "policy.exchange_enabled": [False, True],
            "policy.imbalance_threshold": [1.5, 3.0],
        },
        smoke={
            "workload.jobs_per_community": 3,
            "sweep": {"policy.exchange_enabled": [False, True]},
        },
    )


@scenario
def grid_hetero_mix() -> ScenarioSpec:
    """Between-cluster heterogeneity: narrow to wide speed spreads."""

    return ScenarioSpec(
        name="grid.hetero-mix",
        model="grid-decentralized",
        description="random light grids of increasing between-cluster heterogeneity",
        tags=("grid", "decentralized", "heterogeneous"),
        platform=ComponentSpec(
            "random-grid", {"n_clusters": 3, "nodes_range": [16, 48]},
        ),
        workload=ComponentSpec("grid-random", {"jobs_per_cluster": 18, "rate": 1.0}),
        policy=ComponentSpec("exchange", {"local_policy": "backfill"}),
        metrics=("makespan", "mean_flow", "migrations", "fairness_on_work"),
        repetitions=2,
        seed=1234,
        sweep={
            "platform.speed_range": [[0.9, 1.1], [0.5, 1.5], [0.25, 2.0]],
        },
        smoke={
            "workload.jobs_per_cluster": 6,
            "sweep": {"platform.speed_range": [[0.5, 1.5]]},
        },
    )


@scenario
def grid_node_churn() -> ScenarioSpec:
    """Node churn: processor outages preempting the best-effort grid stream."""

    return ScenarioSpec(
        name="grid.node-churn",
        model="grid-centralized",
        description="random grid under node churn: outages kill best-effort runs",
        tags=("grid", "churn"),
        platform=ComponentSpec(
            "random-grid", {"n_clusters": 3, "nodes_range": [16, 32]},
        ),
        workload=ComponentSpec(
            "grid-random",
            {
                "jobs_per_cluster": 12,
                "rate": 0.8,
                "n_bags": 3,
                "runs_range": [60, 120],
                "churn": {"n_outages": 6, "procs": 4, "mean_repair": 2.0},
            },
        ),
        policy=ComponentSpec("best-effort", {"local_policy": "backfill"}),
        metrics=(
            "kills", "launches", "total_runs_completed", "expected_runs",
            "throughput", "horizon",
        ),
        repetitions=2,
        seed=1234,
        sweep={
            "workload.churn": [
                {"n_outages": 0},
                {"n_outages": 6, "procs": 4, "mean_repair": 2.0},
                {"n_outages": 16, "procs": 6, "mean_repair": 4.0},
            ],
        },
        smoke={
            "workload.jobs_per_cluster": 4,
            "workload.n_bags": 1,
            "workload.runs_range": [20, 40],
            "sweep": {
                "workload.churn": [
                    {"n_outages": 0},
                    {"n_outages": 4, "procs": 4, "mean_repair": 2.0},
                ],
            },
        },
    )


@scenario
def grid_hetero_policies() -> ScenarioSpec:
    """Per-cluster heterogeneous policies: each CIMENT cluster runs its own
    scheduler (a configuration only the unified runtime makes expressible)."""

    return ScenarioSpec(
        name="grid.hetero-policies",
        model="grid-decentralized",
        description="CIMENT grid where every cluster runs a different local policy",
        tags=("grid", "decentralized", "policy", "runtime"),
        platform=ComponentSpec("ciment"),
        workload=ComponentSpec(
            "ciment-communities", {"jobs_per_community": 10, "grid_bags": False},
        ),
        policy=ComponentSpec("exchange", {"imbalance_threshold": 1.5}),
        metrics=("makespan", "mean_flow", "max_flow", "migrations", "fairness_on_work"),
        repetitions=1,
        seed=1234,
        sweep={
            "policy.local_policy": [
                "backfill",
                {
                    "icluster-itanium": "backfill",
                    "xeon-cluster": "fifo",
                    "athlon-cluster-a": "smallest-first",
                    "athlon-cluster-b": "backfill",
                },
                {
                    "icluster-itanium": "smallest-first",
                    "xeon-cluster": "smallest-first",
                    "athlon-cluster-a": "fifo",
                    "athlon-cluster-b": "fifo",
                },
            ],
        },
        smoke={
            "workload.jobs_per_community": 3,
            "sweep": {
                "policy.local_policy": [
                    "backfill",
                    {
                        "icluster-itanium": "backfill",
                        "xeon-cluster": "fifo",
                        "athlon-cluster-a": "smallest-first",
                        "athlon-cluster-b": "backfill",
                    },
                ],
            },
        },
    )


@scenario
def cluster_policy_switch() -> ScenarioSpec:
    """Mid-run policy switching: an operator flips the queue policy while
    jobs are in flight (runtime hook, no bespoke event loop)."""

    return ScenarioSpec(
        name="cluster.policy-switch",
        model="cluster-online",
        description="FCFS stream switching to backfilling/SJF mid-run",
        tags=("cluster", "online", "policy", "runtime"),
        platform=ComponentSpec("count", {"machine_count": 64}),
        workload=ComponentSpec("moldable", {"n_jobs": 80, "runtime_range": [0.5, 10.0]}),
        arrival=ComponentSpec("poisson", {"rate": 2.0}),
        policy=ComponentSpec("switch", {"initial": "fifo"}),
        metrics=("makespan", "mean_stretch", "utilization", "policy_name", "trace_events"),
        repetitions=3,
        seed=1234,
        sweep={
            "policy.switches": [
                [],
                [[15.0, "backfill"]],
                [[15.0, "smallest-first"], [30.0, "backfill"]],
            ],
        },
        smoke={
            "workload.n_jobs": 20,
            "sweep": {
                "policy.switches": [[], [[8.0, "backfill"]]],
            },
        },
    )


# ---------------------------------------------------------------------------
# Off-line panel + divisible load
# ---------------------------------------------------------------------------


@scenario
def cluster_offline_panel() -> ScenarioSpec:
    """Off-line scheduler shoot-out on a weighted moldable batch."""

    return ScenarioSpec(
        name="cluster.offline-panel",
        model="offline",
        description="off-line policies (WSPT, shelves, MRT, bi-criteria) on one batch",
        tags=("cluster", "offline", "policy"),
        platform=ComponentSpec("count", {"machine_count": 64}),
        workload=ComponentSpec("moldable", {"n_jobs": 60, "weight_scheme": "work"}),
        metrics=(
            "makespan_ratio", "weighted_completion_ratio",
            "mean_stretch", "policy_name",
        ),
        repetitions=2,
        seed=1234,
        sweep={"policy.kind": ["wspt", "smart-shelves", "mrt", "bicriteria"]},
        smoke={
            "workload.n_jobs": 15,
            "sweep": {"policy.kind": ["wspt", "bicriteria"]},
        },
    )


@scenario
def dlt_multiround_scaling() -> ScenarioSpec:
    """Divisible load: optimal round counts as the worker pool grows."""

    return ScenarioSpec(
        name="dlt.multiround-scaling",
        model="dlt",
        description="DLT multi-round distribution, sweeping the worker count",
        tags=("dlt",),
        platform=ComponentSpec("dlt-star", {"n_workers": 32}),
        workload=ComponentSpec("dlt-load", {"total_load": 500.0}),
        policy=ComponentSpec("multiround", {"max_rounds": 12}),
        repetitions=1,
        seed=1234,
        sweep={"platform.n_workers": [16, 32, 64, 128]},
        smoke={
            "policy.max_rounds": 6,
            "sweep": {"platform.n_workers": [8, 16]},
        },
    )
