"""Adapt schedule-constructing policies to the on-line policy protocol.

The policies of :mod:`repro.core.policies` (bi-criteria batches, shelves,
MRT, list scheduling, backfilling constructions, rigid/moldable mixes,
batch-online, reservations) build a whole :class:`Schedule` from a job set.
:class:`PlannedPolicy` turns any of them into a
:class:`~repro.core.policies.online.SchedulingPolicy` so the unified runtime
can drive them on-line:

* whenever the set of queued jobs changes, the wrapped scheduler plans the
  current queue on the full machine set;
* the plan induces a deterministic priority order -- planned start time,
  then job name -- and a per-job processor allocation;
* ``select`` dispatches strictly in plan order (FCFS over the plan, no
  bypassing), so the planned sequencing is respected and no job can be
  starved: the head of the plan always fits the full machine set and
  therefore eventually starts.

The adaptation is heuristic -- an event-driven execution cannot replay an
off-line schedule exactly once new jobs keep arriving -- but it preserves
each policy's *ordering intent*, which is what the paper's "which policy for
which application" question is about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.job import Job
from repro.core.policies.base import MoldableAllocator
from repro.core.policies.online import SchedulingPolicy


class PlannedPolicy(SchedulingPolicy):
    """Run a schedule-constructing policy behind the on-line protocol."""

    def __init__(self, scheduler, allocator: Optional[MoldableAllocator] = None) -> None:
        super().__init__(allocator)
        self.scheduler = scheduler
        self.name = f"planned({scheduler.name})"
        self._plan_key: Optional[Tuple[str, ...]] = None
        #: job name -> (rank in the plan, planned processor count)
        self._plan: Dict[str, Tuple[int, int]] = {}

    def reset(self) -> None:
        """Invalidate the cached plan (a new simulation run is starting).

        Plans are keyed by queued job *names*; across runs the same names
        may describe different jobs, so the runtime resets the adapter
        before every run.
        """

        self._plan_key = None
        self._plan = {}

    def _replan(self, queue: Sequence[Job], machine_count: int) -> None:
        schedule = self.scheduler.schedule(list(queue), machine_count)
        entries = sorted(schedule, key=lambda e: (e.start, e.job.name))
        self._plan = {
            entry.job.name: (rank, entry.allocation.nbproc)
            for rank, entry in enumerate(entries)
        }

    def select(self, queue: Sequence[Job], free: int, now: float, machine_count: int):
        key = tuple(sorted(job.name for job in queue))
        if key != self._plan_key:
            self._replan(queue, machine_count)
            self._plan_key = key
        plan = self._plan
        fallback = (len(plan), 0)
        ordered = sorted(queue, key=lambda job: (plan.get(job.name, fallback)[0], job.name))
        decisions: List[Tuple[Job, int]] = []
        remaining = free
        for job in ordered:
            nbproc = plan.get(job.name, fallback)[1]
            if nbproc < 1:  # job missing from the plan: allocate like FCFS
                nbproc = self.allocation(job, machine_count, remaining)
            if nbproc <= remaining:
                decisions.append((job, nbproc))
                remaining -= nbproc
            else:
                break  # respect the plan order strictly (no starvation)
        return decisions
