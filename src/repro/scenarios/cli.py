"""Command-line interface of the scenario registry.

::

    python -m repro.scenarios list                     # registered scenarios
    python -m repro.scenarios list --tag grid          # filter by tag
    python -m repro.scenarios describe fig2.bicriteria # spec as TOML
    python -m repro.scenarios run cluster.policy-panel # one scenario
    python -m repro.scenarios run --all --smoke        # CI smoke tier
    python -m repro.scenarios run --all --smoke --executor tcp://127.0.0.1:8765
                                       # ... on external distributed workers
    python -m repro.scenarios run fig2.bicriteria --store results/ --campaign serial
                                       # ... streaming rows into a campaign store
    python -m repro.scenarios sweep cluster.load-ramp --smoke --out out.csv
    python -m repro.scenarios sweep cluster.load-ramp --smoke --out out.parquet
    python -m repro.scenarios sweep swf.replay --axis policy.kind=fifo,backfill

Exit codes: 0 on success, 1 when any scenario fails to run, 2 on usage
errors (unknown scenario names, bad axis syntax).

Exports go through ``--out PATH`` (format inferred from the suffix, or
forced with ``--format csv|jsonl|parquet``); the old ``--csv PATH`` spelling
still works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.scenarios import registry
from repro.scenarios.composer import rows_digest, run_scenario, summarize
from repro.scenarios.spec import ScenarioSpec, SpecError


@contextlib.contextmanager
def serve_dashboard(port: Optional[int]) -> Iterator[Any]:
    """Serve the live telemetry dashboard while the body runs.

    ``port=None`` (the flag's default) is a no-op, so callers wrap their
    run unconditionally; ``0`` binds a free port.  The URL goes to stderr
    -- stdout stays reserved for the ok/FAIL summary lines.  Shared by
    ``repro.scenarios`` and the ``repro.distributed`` scheduler/run CLIs.
    """

    if port is None:
        yield None
        return
    from repro.dashboard.app import DashboardServer

    server = DashboardServer(port=port).start()
    print(f"dashboard serving on {server.url}", file=sys.stderr, flush=True)
    try:
        yield server
    finally:
        server.stop()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List, describe and run the registered simulation scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", help="list registered scenarios")
    lst.add_argument("--tag", default=None, help="only scenarios carrying this tag")
    lst.add_argument("--names-only", action="store_true", help="one name per line")

    describe = sub.add_parser("describe", help="print one scenario spec")
    describe.add_argument("name")
    describe.add_argument(
        "--format", choices=("toml", "json"), default="toml", dest="fmt",
        help="output format (default: toml)",
    )

    run = sub.add_parser("run", help="run scenarios and print a summary")
    run.add_argument("names", nargs="*", help="scenario names (or use --all)")
    run.add_argument("--all", action="store_true", help="run every registered scenario")
    run.add_argument("--tag", default=None, help="with --all: only this tag")
    run.add_argument("--smoke", action="store_true", help="tiny smoke-tier sizes")
    run.add_argument(
        "--executor", "--jobs", default=None, dest="jobs", metavar="SPEC",
        help="executor spec: a job count, 'serial', 'auto', 'distributed', or "
             "tcp://HOST:PORT to schedule cells onto external distributed workers",
    )
    run.add_argument(
        "--output", type=Path, default=None,
        help="write a JSON summary (per-scenario rows/digest/elapsed) to this file",
    )
    run.add_argument(
        "--spec", type=Path, action="append", default=[], dest="spec_files",
        metavar="FILE.toml", help="also run a scenario spec loaded from a TOML file",
    )
    run.add_argument(
        "--dashboard", type=int, default=None, metavar="PORT",
        help="serve the live telemetry dashboard on this port while the "
             "scenarios run (0 picks a free port; the URL goes to stderr)",
    )
    _add_export_arguments(run)

    swp = sub.add_parser("sweep", help="run one scenario sweep and print the rows")
    swp.add_argument("name")
    swp.add_argument("--smoke", action="store_true", help="start from the smoke tier")
    swp.add_argument(
        "--axis", action="append", default=[], metavar="PATH=V1,V2,...",
        help="override a sweep axis (repeatable), e.g. policy.kind=fifo,backfill",
    )
    swp.add_argument("--repetitions", type=int, default=None)
    swp.add_argument(
        "--executor", "--jobs", default=None, dest="jobs", metavar="SPEC",
        help="executor spec: a job count, 'serial', 'auto', 'distributed', or "
             "tcp://HOST:PORT to schedule cells onto external distributed workers",
    )
    swp.add_argument(
        "--dashboard", type=int, default=None, metavar="PORT",
        help="serve the live telemetry dashboard on this port while the "
             "sweep runs (0 picks a free port; the URL goes to stderr)",
    )
    _add_export_arguments(swp)
    swp.add_argument(
        "--group-by", default=None, metavar="COLUMN",
        help="also print per-group means of every numeric metric",
    )
    return parser


def _add_export_arguments(parser: argparse.ArgumentParser) -> None:
    """The unified export/store flags shared by ``run`` and ``sweep``."""

    from repro.store.api import FORMATS

    parser.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the result rows to this file (csv/jsonl/parquet, "
             "inferred from the suffix)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default=None, dest="out_format",
        help="force the --out format instead of inferring it from the suffix",
    )
    parser.add_argument(
        "--csv", type=Path, default=None, metavar="PATH",
        help="(deprecated) alias for --out PATH --format csv",
    )
    parser.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="stream every completed cell into this campaign store directory "
             "(query it with python -m repro.store)",
    )
    parser.add_argument(
        "--campaign", default=None, metavar="NAME",
        help="campaign label inside --store (default: 'default')",
    )


def _resolve_out(args: argparse.Namespace) -> Optional[Path]:
    """Merge ``--out`` with the deprecated ``--csv`` alias (warns when used)."""

    from repro.store.api import deprecated_csv_flag

    csv_path = deprecated_csv_flag(args.csv)
    if csv_path is not None:
        if args.out is not None:
            raise SpecError("--csv is an alias for --out; give only one of them")
        args.out_format = "csv"
        return csv_path
    return args.out


def _open_store(args: argparse.Namespace) -> Optional[Any]:
    if args.store is None:
        if args.campaign:
            raise SpecError("--campaign needs --store DIR")
        return None
    from repro.store.columnar import CampaignStore

    return CampaignStore(args.store, campaign=args.campaign or "default")


def _executor(spec: Optional[str]) -> Any:
    """Resolve an --executor/--jobs value eagerly.

    Resolving here (instead of letting ``run_scenario`` do it per scenario)
    makes a malformed spec a *usage* error -- one message, exit code 2 --
    rather than N per-scenario FAIL lines pretending the scenarios broke.
    Raises :class:`~repro.experiments.executors.ExecutorSpecError`.
    """

    if spec is None:
        return None
    from repro.experiments.executors import resolve_executor

    try:
        value: Any = int(spec)
    except ValueError:
        value = spec
    return resolve_executor(value)


def _parse_axis_value(token: str) -> Any:
    lowered = token.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for converter in (int, float):
        try:
            return converter(token)
        except ValueError:
            continue
    return token


def _parse_axes(pairs: List[str]) -> Dict[str, List[Any]]:
    axes: Dict[str, List[Any]] = {}
    for pair in pairs:
        path, sep, values = pair.partition("=")
        if not sep or not path or not values:
            raise SpecError(f"bad --axis {pair!r}: expected PATH=V1,V2,...")
        axes[path] = [_parse_axis_value(v) for v in values.split(",")]
    return axes


def _cmd_list(args: argparse.Namespace) -> int:
    specs = registry.all_specs(args.tag)
    if args.names_only:
        for spec in specs:
            print(spec.name)
        return 0
    if not specs:
        print("no scenarios registered" + (f" with tag {args.tag!r}" if args.tag else ""))
        return 0
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        tags = ",".join(spec.tags)
        cells = 1
        for values in spec.sweep.values():
            cells *= len(values)
        cells *= spec.repetitions
        print(f"{spec.name:<{width}}  [{spec.model}] ({cells} cells)  {spec.description}"
              + (f"  <{tags}>" if tags else ""))
    print(f"\n{len(specs)} scenario(s) registered")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    try:
        spec = registry.get(args.name)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    else:
        print(spec.to_toml(), end="")
    return 0


def select_specs(
    names: List[str],
    use_all: bool,
    tag: Optional[str],
    *,
    usage_hint: str = "give scenario names or --all",
) -> Optional[List[ScenarioSpec]]:
    """Resolve a CLI scenario selection (names, or ``--all`` [``--tag``]).

    Shared by ``repro.scenarios run`` and the ``repro.distributed``
    scheduler/run commands.  On a usage error (unknown name, empty
    selection) prints the message and returns ``None`` -- callers exit 2.
    """

    if use_all:
        return registry.all_specs(tag)
    if names:
        try:
            return registry.resolve(names)
        except KeyError as error:
            print(error, file=sys.stderr)
            return None
    print(f"nothing to run: {usage_hint}", file=sys.stderr)
    return None


def run_specs(
    specs: List[ScenarioSpec],
    *,
    smoke: bool,
    executor: Any = None,
    output: Optional[Path] = None,
    schema: str = "repro.scenarios/1",
    sink: Any = None,
    out: Optional[Path] = None,
    out_format: Optional[str] = None,
) -> int:
    """Run scenario specs, print ok/FAIL summary lines, optionally write JSON.

    The single implementation behind ``repro.scenarios run`` and the
    ``repro.distributed`` scheduler/run commands, so summary format, failure
    handling and exit codes cannot drift between the CLIs.  Every completed
    cell streams into ``sink`` (a :class:`~repro.store.api.RowSink`, e.g. a
    campaign store) when one is given; ``out`` additionally exports the
    concatenated rows through :func:`repro.store.api.write_rows`.  Returns 1
    when any scenario failed, else 0.
    """

    tier = "smoke" if smoke else "full"
    summaries: List[Dict[str, Any]] = []
    exported: List[Dict[str, Any]] = []
    failures = 0
    for spec in specs:
        try:
            result = run_scenario(spec, smoke=smoke, executor=executor, sink=sink)
        except Exception as error:  # a broken scenario must fail the build, visibly
            failures += 1
            message = f"{type(error).__name__}: {error}"
            print(f"FAIL {spec.name}: {message.splitlines()[0][:160]}")
            summaries.append({"name": spec.name, "tier": tier, "ok": False, "error": message})
            continue
        outcome = summarize(spec, result, store=sink)
        if out is not None:
            exported.extend(result.rows)
            outcome.rows_path = str(out)
        # Cache hits cover both the on-disk result cache and, under a
        # distributed executor, campaign-journal replays.
        replayed = f", {outcome.cache_hits} cached" if outcome.cache_hits else ""
        print(
            f"ok   {outcome.name}: {outcome.rows} rows in "
            f"{outcome.elapsed_seconds:.2f}s [{outcome.executor}{replayed}] "
            f"digest {outcome.digest[:12]}"
        )
        summaries.append({"tier": tier, "ok": True, **outcome.to_dict()})
    print(f"\n{len(specs) - failures}/{len(specs)} scenario(s) passed ({tier} tier)")
    if sink is not None:
        sink.flush()
    if out is not None:
        from repro.store.api import write_rows

        write_rows(exported, out, fmt=out_format)
        print(f"{len(exported)} row(s) written to {out}")
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(
            {"schema": schema, "tier": tier, "scenarios": summaries},
            indent=2, sort_keys=True,
        ) + "\n")
        print(f"summary written to {output}")
    return 1 if failures else 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        executor = _executor(args.jobs)
        out = _resolve_out(args)
        sink = _open_store(args)
    except (ValueError, SpecError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.all or args.names or not args.spec_files:
        specs = select_specs(
            args.names, args.all, args.tag,
            usage_hint="give scenario names, --spec files or --all",
        )
        if specs is None:
            return 2
    else:
        specs = []
    for path in args.spec_files:
        try:
            specs.append(ScenarioSpec.from_toml(path.read_text()))
        except (OSError, SpecError) as error:
            print(f"cannot load spec {path}: {error}", file=sys.stderr)
            return 2
    if not specs:
        print("no scenarios matched", file=sys.stderr)
        return 2
    with serve_dashboard(args.dashboard):
        return run_specs(
            specs, smoke=args.smoke, executor=executor, output=args.output,
            sink=sink, out=out, out_format=args.out_format,
        )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import ascii_table

    try:
        spec = registry.get(args.name)
        axes = _parse_axes(args.axis)
        executor = _executor(args.jobs)
        out = _resolve_out(args)
        sink = _open_store(args)
    except (KeyError, SpecError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    sweep = dict(spec.smoke_spec().sweep if args.smoke else spec.sweep)
    sweep.update(axes)
    try:
        with serve_dashboard(args.dashboard):
            result = run_scenario(
                spec,
                smoke=args.smoke,
                sweep=sweep,
                repetitions=args.repetitions,
                executor=executor,
                sink=sink,
            )
    except Exception as error:
        print(f"FAIL {spec.name}: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    print(ascii_table(result.rows, title=f"{spec.name} ({len(result.rows)} rows)"))
    if args.group_by:
        # Group on repr: sweep-axis values may be unhashable (lists, dicts).
        groups: Dict[str, List[Dict[str, Any]]] = {}
        for row in result.rows:
            groups.setdefault(repr(row.get(args.group_by)), []).append(row)
        grouped_rows = []
        for value, rows in sorted(groups.items()):
            row = {args.group_by: value}
            for key in rows[0]:
                values = [r[key] for r in rows if isinstance(r.get(key), (int, float))
                          and not isinstance(r.get(key), bool)]
                if values and key != args.group_by:
                    row[key] = sum(values) / len(values)
            grouped_rows.append(row)
        print(ascii_table(grouped_rows, title=f"means by {args.group_by}"))
    print(f"digest {rows_digest(result.rows)[:12]}, elapsed {result.elapsed_seconds:.2f}s")
    if out is not None:
        from repro.store.api import write_rows

        write_rows(result.rows, out, fmt=args.out_format)
        print(f"rows written to {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    parser.error(f"unknown command {args.command!r}")
    return 2
