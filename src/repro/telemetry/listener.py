"""The :class:`SweepListener` protocol: how sweeps report cell lifecycle.

This replaces the historical ad-hoc ``progress=`` / ``on_row=`` callbacks on
:func:`repro.experiments.harness.run_experiment` and
:func:`repro.scenarios.composer.run_scenario`.  A listener receives typed
lifecycle notifications; the default telemetry bus
(:class:`repro.telemetry.bus.TelemetryBus`) is itself a listener, so every
sweep is observable from the dashboard without any caller plumbing.

Listeners are observation only: they run in the harness thread between
cells, they receive the same arguments whatever the executor, and the rows
of the sweep must be byte-identical whether zero or many listeners watch.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Iterable, Optional


class SweepListener:
    """Base class / protocol for sweep observation.  All methods are no-ops.

    ``experiment`` is the sweep name, ``cell`` an
    :class:`repro.experiments.grid.Cell`, ``outcome`` a
    :class:`~repro.experiments.grid.CellOutcome` and ``row`` the composed
    flat result row.  ``on_cell_start`` fires when the harness begins
    waiting on that cell's outcome -- under a pool executor the true remote
    start is not observable, so treat it as "cell entered the live window".
    """

    def on_sweep_start(self, experiment: str, total_cells: int) -> None:
        """The sweep expanded its grid; ``total_cells`` outcomes will follow."""

    def on_cell_start(self, experiment: str, cell: Any) -> None:
        """The harness is now waiting on ``cell``'s outcome."""

    def on_row(self, experiment: str, cell: Any, row: Dict[str, Any], outcome: Any) -> None:
        """A cell completed successfully and produced ``row``."""

    def on_error(self, experiment: str, cell: Any, outcome: Any) -> None:
        """A cell failed (only under ``capture_errors=True`` semantics)."""

    def on_sweep_end(self, experiment: str, result: Any) -> None:
        """The sweep finished (also on error paths, with the partial result)."""


class CallbackListener(SweepListener):
    """Adapter wrapping the legacy ``progress=`` / ``on_row=`` callbacks.

    Emits byte-identical messages to the historical inline calls so scripts
    parsing harness stderr keep working through the deprecation window.
    """

    def __init__(
        self,
        progress: Optional[Callable[[str], None]] = None,
        on_row: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self._progress = progress
        self._on_row = on_row

    def on_row(self, experiment: str, cell: Any, row: Dict[str, Any], outcome: Any) -> None:
        if self._on_row is not None:
            self._on_row(row)
        if self._progress is not None:
            suffix = " [cached]" if outcome.cached else f" [{outcome.elapsed_seconds:.3f}s]"
            self._progress(f"{experiment}: {cell.describe()}{suffix}")

    def on_error(self, experiment: str, cell: Any, outcome: Any) -> None:
        if self._progress is not None:
            self._progress(f"{experiment}: {cell.describe()} FAILED ({outcome.error_type})")


class FanoutListener(SweepListener):
    """Forward every notification to each listener, in order.

    Listener exceptions propagate: a broken observer is a caller bug, and
    hiding it would make sweeps silently unobserved.
    """

    def __init__(self, listeners: Iterable[SweepListener]) -> None:
        self.listeners = [listener for listener in listeners if listener is not None]

    def on_sweep_start(self, experiment: str, total_cells: int) -> None:
        for listener in self.listeners:
            listener.on_sweep_start(experiment, total_cells)

    def on_cell_start(self, experiment: str, cell: Any) -> None:
        for listener in self.listeners:
            listener.on_cell_start(experiment, cell)

    def on_row(self, experiment: str, cell: Any, row: Dict[str, Any], outcome: Any) -> None:
        for listener in self.listeners:
            listener.on_row(experiment, cell, row, outcome)

    def on_error(self, experiment: str, cell: Any, outcome: Any) -> None:
        for listener in self.listeners:
            listener.on_error(experiment, cell, outcome)

    def on_sweep_end(self, experiment: str, result: Any) -> None:
        for listener in self.listeners:
            listener.on_sweep_end(experiment, result)


def listener_with_callbacks(
    listener: Optional[SweepListener],
    progress: Optional[Callable[[str], None]],
    on_row: Optional[Callable[[Dict[str, Any]], None]],
    *,
    stacklevel: int = 3,
) -> Optional[SweepListener]:
    """Compose ``listener=`` with the deprecated ``progress=``/``on_row=``.

    Returns ``listener`` untouched when no legacy callback is given;
    otherwise warns once and folds the callbacks into the listener chain.
    """

    if progress is None and on_row is None:
        return listener
    warnings.warn(
        "progress= and on_row= are deprecated; pass "
        "listener=repro.telemetry.listener.CallbackListener(progress=..., "
        "on_row=...) or any SweepListener instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    legacy = CallbackListener(progress=progress, on_row=on_row)
    if listener is None:
        return legacy
    return FanoutListener([listener, legacy])
