"""``python -m repro.distributed`` -- see :mod:`repro.distributed.cli`."""

import sys

from repro.distributed.cli import main

if __name__ == "__main__":
    sys.exit(main())
